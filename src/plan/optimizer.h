// Rewrite-pass pipeline over the plan IR. Each pass is one file under
// src/plan/passes/; the Optimizer runs them in order and assembles an
// OptimizedPlan that lowering (src/plan/lowering.h) compiles onto the
// imperative QueryPlan machinery.
//
// The stock pipeline is: predicate pushdown -> projection pruning ->
// operator fusion. Fusion runs last because the earlier passes reorder and
// insert nodes; it decides which nodes share a stage, and every edge it
// fuses deletes one shared-log append/read round trip.
#ifndef IMPELLER_SRC_PLAN_OPTIMIZER_H_
#define IMPELLER_SRC_PLAN_OPTIMIZER_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/plan/ir.h"
#include "src/plan/registry.h"

namespace impeller {
namespace plan {

// Shared mutable state threaded through the pass pipeline.
struct PassContext {
  LogicalPlan* plan = nullptr;
  const UdfRegistry* registry = nullptr;

  // Filled by the fusion pass: node id -> id of the node heading its fused
  // group, and the groups themselves (each a linear operator chain, listed
  // head-first) in deterministic topological order. Source nodes are not
  // grouped — they lower to ingress streams, not stages.
  std::map<std::string, std::string> group_of;
  std::vector<std::vector<std::string>> groups;
  // Fused producer->consumer edges; each one is a log hop that no longer
  // exists in the lowered plan.
  std::vector<std::pair<std::string, std::string>> fused_edges;

  // Filled by projection pruning: ingress stream -> field subset actually
  // read downstream (only when narrower than the registered schema).
  std::map<std::string, std::set<std::string>> pruned_fields;

  // Human-readable pass log, surfaced by Explain().
  std::vector<std::string> log;
  void Note(std::string_view pass, std::string message) {
    log.push_back(std::string(pass) + ": " + std::move(message));
  }
};

class PlanPass {
 public:
  virtual ~PlanPass() = default;
  virtual std::string_view name() const = 0;
  // Returns the number of rewrites applied. The plan must be valid before
  // and after (Optimizer::Run re-validates between passes).
  virtual Result<int> Run(PassContext* ctx) = 0;
};

// The optimizer's output: the (possibly rewritten) plan plus the stage
// grouping and annotations lowering needs. Grouping lives here, not in the
// IR, so LogicalPlan stays serializable without derived state.
struct OptimizedPlan {
  LogicalPlan plan;
  std::map<std::string, std::string> group_of;
  std::vector<std::vector<std::string>> groups;
  std::vector<std::pair<std::string, std::string>> fused_edges;
  std::map<std::string, std::set<std::string>> pruned_fields;
  std::vector<std::string> pass_log;
  int hops_eliminated = 0;  // == fused_edges.size()
};

class Optimizer {
 public:
  // The stock pipeline. `fuse` false swaps the fusion pass for one that
  // gives every operator its own stage — the "every boundary is a log hop"
  // strawman the ablation benchmark measures against.
  static Optimizer Default(bool fuse = true);

  Optimizer& AddPass(std::unique_ptr<PlanPass> pass);

  // Runs the pipeline over a copy of `input`. Validates before the first
  // pass and after each rewriting pass.
  Result<OptimizedPlan> Run(const LogicalPlan& input,
                            const UdfRegistry& registry) const;

 private:
  std::vector<std::shared_ptr<PlanPass>> passes_;  // shared: Optimizer copyable
};

}  // namespace plan
}  // namespace impeller

#endif  // IMPELLER_SRC_PLAN_OPTIMIZER_H_
