// Factories for the built-in optimizer passes. Each pass lives in its own
// .cc file in this directory; adding a pass means adding one file here and
// one line to Optimizer::Default().
#ifndef IMPELLER_SRC_PLAN_PASSES_PASSES_H_
#define IMPELLER_SRC_PLAN_PASSES_PASSES_H_

#include <memory>

#include "src/plan/optimizer.h"

namespace impeller {
namespace plan {

// Moves filters toward sources past maps/flat_maps/key_bys whose declared
// traits prove the swap safe (see UdfTraits). Runs to fixpoint.
std::unique_ptr<PlanPass> MakePredicatePushdownPass();

// Computes, per ingress stream with a registered schema, the field subset
// the plan actually reads; records prunable streams for lowering (which
// inserts a registered projector, if any, at the consuming stage head).
std::unique_ptr<PlanPass> MakeProjectionPruningPass();

// Assigns nodes to fused stages. `fuse` true packs maximal linear operator
// chains into single stages — each fused edge removes one shared-log hop;
// false gives every operator its own stage (the ablation baseline).
std::unique_ptr<PlanPass> MakeFusionPass(bool fuse);

}  // namespace plan
}  // namespace impeller

#endif  // IMPELLER_SRC_PLAN_PASSES_PASSES_H_
