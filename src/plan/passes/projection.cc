// Projection pruning: for each ingress stream with a registered schema,
// computes the subset of fields the plan can actually observe and records
// streams whose needed set is narrower than their schema. Lowering inserts
// a registered projector map (if any) at the consuming stage head; without
// one the result is advisory and surfaced by Explain().
//
// Needed-field analysis runs backward over the DAG:
//   - sinks, aggregates, and joins need "*" (they emit or fold the whole
//     record, so every surviving field is observable downstream);
//   - a map/flat_map needs what its UDF reads, plus any downstream needs
//     it declares it preserves (preserved fields flow through);
//   - a filter or key_by passes the value through unchanged, so it needs
//     what its UDF reads plus everything downstream needs.
// The conservative trait default (reads = {"*"}) therefore disables
// pruning for any stream touched by an undeclared UDF.
#include <map>
#include <string>

#include "src/plan/passes/passes.h"

namespace impeller {
namespace plan {
namespace {

constexpr char kAll[] = "*";

bool HasAll(const std::set<std::string>& fields) {
  return fields.count(kAll) != 0;
}

std::string JoinFields(const std::set<std::string>& fields) {
  std::string out;
  for (const auto& f : fields) {
    if (!out.empty()) {
      out += ",";
    }
    out += f;
  }
  return out;
}

class ProjectionPruningPass : public PlanPass {
 public:
  std::string_view name() const override { return "projection-pruning"; }

  Result<int> Run(PassContext* ctx) override {
    const LogicalPlan& plan = *ctx->plan;
    needed_.clear();
    ctx->pruned_fields.clear();

    int pruned = 0;
    for (const auto& node : plan.nodes) {
      if (node.kind != OpKind::kSource) {
        continue;
      }
      const std::vector<std::string>* schema =
          ctx->registry->Schema(node.stream);
      if (schema == nullptr) {
        continue;  // opaque stream; nothing to reason about
      }
      std::set<std::string> needed;
      for (const auto& consumer : plan.ConsumersOf(node.id)) {
        Union(&needed, Needed(plan, *ctx->registry, consumer));
      }
      if (HasAll(needed)) {
        continue;
      }
      std::set<std::string> kept;
      for (const auto& field : *schema) {
        if (needed.count(field) != 0) {
          kept.insert(field);
        }
      }
      if (kept.size() < schema->size()) {
        ctx->pruned_fields[node.stream] = kept;
        ctx->Note(name(), "stream '" + node.stream + "' prunable to {" +
                              JoinFields(kept) + "} of " +
                              std::to_string(schema->size()) + " field(s)");
        ++pruned;
      }
    }
    return pruned;
  }

 private:
  static void Union(std::set<std::string>* into,
                    const std::set<std::string>& from) {
    into->insert(from.begin(), from.end());
  }

  // Fields of `id`'s *input* records that `id` or anything downstream of it
  // can observe. Memoized; the plan is a DAG so recursion terminates.
  const std::set<std::string>& Needed(const LogicalPlan& plan,
                                      const UdfRegistry& registry,
                                      const std::string& id) {
    auto it = needed_.find(id);
    if (it != needed_.end()) {
      return it->second;
    }
    const PlanNode* node = plan.FindNode(id);
    std::set<std::string> result;
    switch (node->kind) {
      case OpKind::kFilter:
      case OpKind::kKeyBy: {
        result = registry.Traits(node->expr).reads;
        for (const auto& consumer : plan.ConsumersOf(id)) {
          Union(&result, Needed(plan, registry, consumer));
        }
        break;
      }
      case OpKind::kMap:
      case OpKind::kFlatMap: {
        UdfTraits traits = registry.Traits(node->expr);
        result = traits.reads;
        // Downstream needs flow through only for declared-preserved fields.
        std::set<std::string> downstream;
        for (const auto& consumer : plan.ConsumersOf(id)) {
          Union(&downstream, Needed(plan, registry, consumer));
        }
        if (HasAll(traits.preserves)) {
          Union(&result, downstream);
        } else if (HasAll(downstream)) {
          // Downstream observes every output field, so every declared-
          // preserved input field is observable.
          Union(&result, traits.preserves);
        } else {
          for (const auto& field : downstream) {
            if (traits.preserves.count(field) != 0) {
              result.insert(field);
            }
          }
        }
        break;
      }
      default:
        // Aggregates, joins, and sinks fold or emit whole records.
        result = {kAll};
    }
    if (HasAll(result)) {
      result = {kAll};
    }
    return needed_.emplace(id, std::move(result)).first->second;
  }

  std::map<std::string, std::set<std::string>> needed_;
};

}  // namespace

std::unique_ptr<PlanPass> MakeProjectionPruningPass() {
  return std::make_unique<ProjectionPruningPass>();
}

}  // namespace plan
}  // namespace impeller
