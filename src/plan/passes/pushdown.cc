// Predicate pushdown: hoists filters toward sources so records that will
// be dropped anyway die before paying append/read round trips and UDF
// work. Legality is proven from declared UdfTraits; the conservative
// defaults (a UDF reads everything and preserves nothing) make the pass a
// no-op for any plan whose UDFs never opted in — it can only fire where it
// is provably safe.
//
// A filter F may swap with its single-input, single-consumer producer P:
//   - P is a map or flat_map, every field F reads is in P.preserves, and
//     (if F reads the record key) P preserves the key. flat_map is safe
//     because filtering each duplicate of a record equals filtering the
//     record first: the predicate sees identical (key, preserved-field)
//     inputs either way.
//   - P is a key_by and F does not read the key (key_by rewrites only the
//     key; values pass through untouched).
// Stateful nodes, joins, and sources are barriers. Runs to fixpoint.
#include <algorithm>
#include <string>

#include "src/plan/passes/passes.h"

namespace impeller {
namespace plan {
namespace {

bool ReadsSubsetOfPreserves(const UdfTraits& filter, const UdfTraits& prod) {
  if (filter.reads.count("*") != 0) {
    return false;  // filter reads everything; nothing short of identity helps
  }
  if (prod.preserves.count("*") != 0) {
    return true;
  }
  return std::all_of(filter.reads.begin(), filter.reads.end(),
                     [&](const std::string& f) {
                       return prod.preserves.count(f) != 0;
                     });
}

class PredicatePushdownPass : public PlanPass {
 public:
  std::string_view name() const override { return "predicate-pushdown"; }

  Result<int> Run(PassContext* ctx) override {
    LogicalPlan& plan = *ctx->plan;
    const UdfRegistry& registry = *ctx->registry;
    int rewrites = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& node : plan.nodes) {
        if (node.kind != OpKind::kFilter) {
          continue;
        }
        PlanNode* producer = plan.FindNode(node.inputs[0]);
        if (plan.ConsumersOf(producer->id).size() != 1) {
          continue;  // producer feeds others; hoisting would filter them too
        }
        UdfTraits ft = registry.Traits(node.expr);
        bool legal = false;
        if (producer->kind == OpKind::kMap ||
            producer->kind == OpKind::kFlatMap) {
          UdfTraits pt = registry.Traits(producer->expr);
          legal = ReadsSubsetOfPreserves(ft, pt) &&
                  (!ft.reads_key || pt.preserves_key);
        } else if (producer->kind == OpKind::kKeyBy) {
          legal = !ft.reads_key;
        }
        if (!legal) {
          continue;
        }

        // Swap: grandparent -> filter -> producer -> old consumers.
        std::string grandparent = producer->inputs[0];
        for (const auto& consumer_id : plan.ConsumersOf(node.id)) {
          PlanNode* consumer = plan.FindNode(consumer_id);
          for (auto& input : consumer->inputs) {
            if (input == node.id) {
              input = producer->id;
            }
          }
        }
        producer->inputs[0] = node.id;
        node.inputs[0] = grandparent;
        // Lowering hints are positional: they stay with the slot, not the
        // operator, so stage/stream naming is unaffected by the swap.
        std::swap(node.stage_hint, producer->stage_hint);
        std::swap(node.stream, producer->stream);
        std::swap(node.tasks, producer->tasks);

        ctx->Note(name(), "hoisted filter '" + node.expr + "' (" + node.id +
                              ") above " +
                              std::string(OpKindName(producer->kind)) + " '" +
                              producer->id + "'");
        ++rewrites;
        changed = true;
        break;  // node list mutated; rescan from the top
      }
    }
    return rewrites;
  }
};

}  // namespace

std::unique_ptr<PlanPass> MakePredicatePushdownPass() {
  return std::make_unique<PredicatePushdownPass>();
}

}  // namespace plan
}  // namespace impeller
