// Operator fusion: packs linear chains of plan nodes into shared stages so
// records cross one shared-log hop per *stage* boundary instead of one per
// *operator* boundary. Each fused edge deletes an append + read round trip
// against the log — the dominant per-record latency term.
//
// A node starts a new stage (instead of fusing into its producer's) when:
//   - fusion is disabled (ablation baseline: every operator its own stage);
//   - it is a join (two inputs cannot share one upstream chain);
//   - its producer is a source (sources lower to ingress streams, not
//     stages, so the first real operator always heads a stage);
//   - its producer has more than one consumer (the producer's stage must
//     end there and fan its output across several boundary streams);
//   - it is stateful and its producer's stage re-keyed the records (a
//     key_by earlier in the same stage): state is partitioned by key, and
//     records only migrate to the partition owning their new key by
//     crossing a log boundary whose partitioner hashes that key. Fusing
//     across the re-key would leave state on the wrong shard.
//
// Everything else — stateless operators, sinks, stateful operators whose
// input partitioning is already correct — fuses.
#include <map>
#include <string>
#include <vector>

#include "src/plan/passes/passes.h"

namespace impeller {
namespace plan {
namespace {

class FusionPass : public PlanPass {
 public:
  explicit FusionPass(bool fuse) : fuse_(fuse) {}

  std::string_view name() const override {
    return fuse_ ? "fusion" : "fusion(off)";
  }

  Result<int> Run(PassContext* ctx) override {
    const LogicalPlan& plan = *ctx->plan;
    ctx->group_of.clear();
    ctx->groups.clear();
    ctx->fused_edges.clear();

    // Per-group bookkeeping, indexed by position in ctx->groups.
    std::vector<bool> rekeyed;       // a key_by ran since the group started
    std::map<std::string, size_t> group_index;  // node id -> group

    for (const std::string& id : plan.TopoOrder()) {
      const PlanNode* node = plan.FindNode(id);
      if (node->kind == OpKind::kSource) {
        continue;
      }

      bool head = true;
      if (fuse_ && node->inputs.size() == 1) {
        const PlanNode* producer = plan.FindNode(node->inputs[0]);
        if (producer->kind != OpKind::kSource &&
            plan.ConsumersOf(producer->id).size() == 1) {
          size_t gi = group_index.at(producer->id);
          bool needs_repartition = !IsStatelessKind(node->kind) && rekeyed[gi];
          head = needs_repartition;
        }
      }

      if (head) {
        group_index[id] = ctx->groups.size();
        ctx->groups.push_back({id});
        rekeyed.push_back(node->kind == OpKind::kKeyBy);
      } else {
        size_t gi = group_index.at(node->inputs[0]);
        group_index[id] = gi;
        ctx->groups[gi].push_back(id);
        rekeyed[gi] = rekeyed[gi] || node->kind == OpKind::kKeyBy;
        ctx->fused_edges.emplace_back(node->inputs[0], id);
      }
      ctx->group_of[id] = ctx->groups[group_index[id]].front();
    }

    if (fuse_) {
      ctx->Note(name(), std::to_string(ctx->fused_edges.size()) +
                            " edge(s) fused; " +
                            std::to_string(ctx->groups.size()) + " stage(s)");
    } else {
      ctx->Note(name(), "fusion disabled; " +
                            std::to_string(ctx->groups.size()) +
                            " single-operator stage(s)");
    }
    return static_cast<int>(ctx->fused_edges.size());
  }

 private:
  const bool fuse_;
};

}  // namespace

std::unique_ptr<PlanPass> MakeFusionPass(bool fuse) {
  return std::make_unique<FusionPass>(fuse);
}

}  // namespace plan
}  // namespace impeller
