#include "src/plan/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace impeller {
namespace plan {

Json Json::Bool(bool b) {
  Json j;
  j.type_ = Type::kBool;
  j.bool_ = b;
  return j;
}

Json Json::Number(double n) {
  Json j;
  j.type_ = Type::kNumber;
  j.number_ = n;
  return j;
}

Json Json::Str(std::string s) {
  Json j;
  j.type_ = Type::kString;
  j.string_ = std::move(s);
  return j;
}

Json Json::Array() {
  Json j;
  j.type_ = Type::kArray;
  return j;
}

Json Json::Object() {
  Json j;
  j.type_ = Type::kObject;
  return j;
}

Json& Json::Push(Json value) {
  array_.push_back(std::move(value));
  return array_.back();
}

const Json* Json::Find(std::string_view key) const {
  for (const auto& [k, v] : members_) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

Json& Json::Set(std::string key, Json value) {
  members_.emplace_back(std::move(key), std::move(value));
  return members_.back().second;
}

std::string Json::GetString(std::string_view key, std::string fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

int64_t Json::GetInt(std::string_view key, int64_t fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : fallback;
}

bool Json::GetBool(std::string_view key, bool fallback) const {
  const Json* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : fallback;
}

std::string JsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

namespace {

std::string FormatNumber(double n) {
  // Integral values print without a decimal point so round-trips are exact
  // and diffs stay readable.
  if (std::floor(n) == n && std::fabs(n) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(n));
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", n);
  return buf;
}

}  // namespace

void Json::DumpTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent > 0) {
      *out += '\n';
      out->append(static_cast<size_t>(indent) * d, ' ');
    }
  };
  switch (type_) {
    case Type::kNull:
      *out += "null";
      break;
    case Type::kBool:
      *out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      *out += FormatNumber(number_);
      break;
    case Type::kString:
      *out += JsonQuote(string_);
      break;
    case Type::kArray:
      *out += '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) {
          *out += ',';
          if (indent == 0) {
            *out += ' ';
          }
        }
        newline(depth + 1);
        array_[i].DumpTo(out, indent, depth + 1);
      }
      if (!array_.empty()) {
        newline(depth);
      }
      *out += ']';
      break;
    case Type::kObject:
      *out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) {
          *out += ',';
          if (indent == 0) {
            *out += ' ';
          }
        }
        newline(depth + 1);
        *out += JsonQuote(members_[i].first);
        *out += ": ";
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!members_.empty()) {
        newline(depth);
      }
      *out += '}';
      break;
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

// --- parser ---

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Json> Parse() {
    SkipSpace();
    Json value;
    IMPELLER_RETURN_IF_ERROR(ParseValue(&value));
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return InvalidArgumentError("JSON parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(Json* out) {
    if (++depth_ > 64) {
      return Error("nesting too deep");
    }
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Error("unexpected end of input");
    }
    Status st;
    switch (text_[pos_]) {
      case '{':
        st = ParseObject(out);
        break;
      case '[':
        st = ParseArray(out);
        break;
      case '"': {
        std::string s;
        st = ParseString(&s);
        if (st.ok()) {
          *out = Json::Str(std::move(s));
        }
        break;
      }
      case 't':
        st = ParseLiteral("true");
        if (st.ok()) {
          *out = Json::Bool(true);
        }
        break;
      case 'f':
        st = ParseLiteral("false");
        if (st.ok()) {
          *out = Json::Bool(false);
        }
        break;
      case 'n':
        st = ParseLiteral("null");
        if (st.ok()) {
          *out = Json::Null();
        }
        break;
      default:
        st = ParseNumber(out);
    }
    --depth_;
    return st;
  }

  Status ParseLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      return Error("invalid literal");
    }
    pos_ += lit.size();
    return OkStatus();
  }

  Status ParseNumber(Json* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Error("expected a value");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') {
      return Error("malformed number '" + token + "'");
    }
    *out = Json::Number(value);
    return OkStatus();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) {
      return Error("expected '\"'");
    }
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return OkStatus();
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        break;
      }
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          *out += '"';
          break;
        case '\\':
          *out += '\\';
          break;
        case '/':
          *out += '/';
          break;
        case 'n':
          *out += '\n';
          break;
        case 't':
          *out += '\t';
          break;
        case 'r':
          *out += '\r';
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            return Error("truncated \\u escape");
          }
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("bad \\u escape digit");
            }
          }
          // Only the escapes JsonQuote emits (< 0x20) need to round-trip;
          // encode as UTF-8 for completeness.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  Status ParseArray(Json* out) {
    Consume('[');
    *out = Json::Array();
    SkipSpace();
    if (Consume(']')) {
      return OkStatus();
    }
    while (true) {
      Json element;
      IMPELLER_RETURN_IF_ERROR(ParseValue(&element));
      out->Push(std::move(element));
      SkipSpace();
      if (Consume(']')) {
        return OkStatus();
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  Status ParseObject(Json* out) {
    Consume('{');
    *out = Json::Object();
    SkipSpace();
    if (Consume('}')) {
      return OkStatus();
    }
    while (true) {
      SkipSpace();
      std::string key;
      IMPELLER_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      Json value;
      IMPELLER_RETURN_IF_ERROR(ParseValue(&value));
      if (out->Find(key) != nullptr) {
        return Error("duplicate object key '" + key + "'");
      }
      out->Set(std::move(key), std::move(value));
      SkipSpace();
      if (Consume('}')) {
        return OkStatus();
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Result<Json> Json::Parse(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace plan
}  // namespace impeller
