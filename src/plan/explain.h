// Plan introspection: renders a LoweredPlan as a deterministic text tree
// (the format checked into tests/golden/) or as Graphviz DOT. Both show
// per-stage operator chains, partitioning (task counts, stateful or not),
// boundary streams, and the log hops fusion eliminated.
#ifndef IMPELLER_SRC_PLAN_EXPLAIN_H_
#define IMPELLER_SRC_PLAN_EXPLAIN_H_

#include <string>

#include "src/plan/lowering.h"

namespace impeller {
namespace plan {

std::string ExplainText(const LoweredPlan& lowered);
std::string ExplainDot(const LoweredPlan& lowered);

}  // namespace plan
}  // namespace impeller

#endif  // IMPELLER_SRC_PLAN_EXPLAIN_H_
