// Metrics-driven autoscaler: a control loop that watches per-stage load
// signals (input lag, commit-interval overruns — the observability metrics
// the engine already exports) and rescales stages through the task
// manager's live-handoff path. The controller is deliberately simple and
// conservative: an EWMA smooths the lag signal, hysteresis (consecutive
// tick counts with separate up/down thresholds) filters transients, and a
// per-stage cooldown bounds the rescale rate — a rescale costs a handoff
// blackout, so flapping is worse than lagging slightly.
//
// The autoscaler knows nothing about tasks or the shared log; it sees only
// StageStats and two callbacks, so it can be unit-tested with synthetic
// probes and reused by tools.
#ifndef IMPELLER_SRC_AUTOSCALE_AUTOSCALER_H_
#define IMPELLER_SRC_AUTOSCALE_AUTOSCALER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/autoscale/stats.h"
#include "src/common/clock.h"
#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/threading.h"

namespace impeller {

struct AutoscaleOptions {
  bool enabled = false;
  // How often the controller samples StageStats.
  DurationNs tick_interval = 100 * kMillisecond;
  // EWMA smoothing factor for the lag signal (1.0 = no smoothing).
  double ewma_alpha = 0.4;
  // Smoothed lag above which a stage accumulates scale-up pressure, and
  // below which it accumulates scale-down pressure (records of backlog,
  // per the StageStats::input_lag proxy).
  uint64_t up_threshold = 2000;
  uint64_t down_threshold = 200;
  // Consecutive ticks the signal must hold before acting (hysteresis).
  // Scaling down is much lazier than scaling up: undershooting capacity
  // costs latency immediately, overshooting only costs idle tasks.
  uint32_t up_ticks = 3;
  uint32_t down_ticks = 10;
  // Minimum quiet period between rescales of the same stage.
  DurationNs cooldown = 2 * kSecond;
  // Task-count bounds; max_tasks == 0 means "the stage's substream count".
  uint32_t min_tasks = 1;
  uint32_t max_tasks = 0;
};

class Autoscaler {
 public:
  struct Hooks {
    // Samples the current per-stage load (TaskManager::CollectStageStats).
    std::function<std::vector<StageStats>()> probe;
    // Applies a scaling decision (TaskManager::RescaleStage).
    std::function<Status(const std::string& stage, uint32_t new_tasks)>
        rescale;
  };

  Autoscaler(AutoscaleOptions options, Hooks hooks, Clock* clock,
             MetricsRegistry* metrics = nullptr);
  ~Autoscaler();

  void Start();
  void Stop();

  // One controller tick: probe, update per-stage signals, maybe rescale.
  // Public so tests can drive the loop deterministically without threads.
  void RunOnce();

  uint64_t decisions_up() const { return ups_.load(); }
  uint64_t decisions_down() const { return downs_.load(); }

 private:
  struct StageState {
    double lag_ewma = 0.0;
    uint64_t last_overruns = 0;
    uint32_t up_streak = 0;
    uint32_t down_streak = 0;
    TimeNs last_rescale = 0;
    bool seen = false;
  };

  void Loop();
  void Evaluate(const StageStats& stats, TimeNs now);

  AutoscaleOptions options_;
  Hooks hooks_;
  Clock* clock_;
  MetricsRegistry* metrics_;

  std::map<std::string, StageState> state_;

  std::atomic<uint64_t> ups_{0};
  std::atomic<uint64_t> downs_{0};
  std::atomic<bool> running_{false};
  JoiningThread thread_;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_AUTOSCALE_AUTOSCALER_H_
