#include "src/autoscale/autoscaler.h"

#include <algorithm>

#include "src/common/logging.h"

namespace impeller {

Autoscaler::Autoscaler(AutoscaleOptions options, Hooks hooks, Clock* clock,
                       MetricsRegistry* metrics)
    : options_(std::move(options)),
      hooks_(std::move(hooks)),
      clock_(clock),
      metrics_(metrics) {}

Autoscaler::~Autoscaler() { Stop(); }

void Autoscaler::Start() {
  if (!hooks_.probe || !hooks_.rescale) {
    return;
  }
  if (running_.exchange(true)) {
    return;
  }
  thread_ = JoiningThread([this] { Loop(); });
}

void Autoscaler::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  thread_.Join();
}

void Autoscaler::Loop() {
  while (running_.load()) {
    clock_->SleepFor(options_.tick_interval);
    if (!running_.load()) {
      return;
    }
    RunOnce();
  }
}

void Autoscaler::RunOnce() {
  std::vector<StageStats> all = hooks_.probe();
  TimeNs now = clock_->Now();
  for (const StageStats& stats : all) {
    Evaluate(stats, now);
  }
}

void Autoscaler::Evaluate(const StageStats& stats, TimeNs now) {
  if (stats.num_substreams <= 1) {
    return;  // nothing to scale across
  }
  StageState& st = state_[stats.stage];
  if (!st.seen) {
    st.lag_ewma = static_cast<double>(stats.input_lag);
    st.last_overruns = stats.commit_overruns;
    st.seen = true;
    return;  // the first sample only seeds the signal
  }
  double alpha = std::clamp(options_.ewma_alpha, 0.0, 1.0);
  st.lag_ewma = alpha * static_cast<double>(stats.input_lag) +
                (1.0 - alpha) * st.lag_ewma;
  uint64_t overrun_delta = stats.commit_overruns >= st.last_overruns
                               ? stats.commit_overruns - st.last_overruns
                               : 0;  // counter reset across a restart
  st.last_overruns = stats.commit_overruns;

  uint32_t max_tasks = options_.max_tasks == 0
                           ? stats.num_substreams
                           : std::min(options_.max_tasks,
                                      stats.num_substreams);
  uint32_t min_tasks = std::max<uint32_t>(options_.min_tasks, 1);

  // A stage missing its commit interval is overloaded even when the lag
  // proxy looks tame (e.g. a few enormous records): overruns always count
  // as up-pressure.
  bool pressure_up =
      st.lag_ewma > static_cast<double>(options_.up_threshold) ||
      overrun_delta > 0;
  bool pressure_down =
      st.lag_ewma < static_cast<double>(options_.down_threshold) &&
      overrun_delta == 0;

  if (pressure_up) {
    st.up_streak++;
    st.down_streak = 0;
  } else if (pressure_down) {
    st.down_streak++;
    st.up_streak = 0;
  } else {
    st.up_streak = 0;
    st.down_streak = 0;
    return;
  }

  bool cooled = now - st.last_rescale >= options_.cooldown;
  if (pressure_up && st.up_streak >= options_.up_ticks && cooled &&
      stats.current_tasks < max_tasks) {
    uint32_t target = std::min(max_tasks, stats.current_tasks * 2);
    LOG_INFO << "autoscale: " << stats.stage << " " << stats.current_tasks
             << " -> " << target << " tasks (lag_ewma=" << st.lag_ewma
             << ", overrun_delta=" << overrun_delta << ")";
    Status s = hooks_.rescale(stats.stage, target);
    if (s.ok()) {
      ups_.fetch_add(1);
      if (metrics_ != nullptr) {
        metrics_->GetCounter("autoscale/up")->Add();
      }
      st.last_rescale = now;
      st.up_streak = 0;
      // Re-seed the signal: the backlog predates the new capacity.
      st.lag_ewma = 0.0;
    } else {
      LOG_WARN << "autoscale: scale-up of " << stats.stage
               << " failed: " << s.ToString();
    }
  } else if (pressure_down && st.down_streak >= options_.down_ticks &&
             cooled && stats.current_tasks > min_tasks) {
    uint32_t target = std::max(min_tasks, stats.current_tasks / 2);
    LOG_INFO << "autoscale: " << stats.stage << " " << stats.current_tasks
             << " -> " << target << " tasks (lag_ewma=" << st.lag_ewma
             << ")";
    Status s = hooks_.rescale(stats.stage, target);
    if (s.ok()) {
      downs_.fetch_add(1);
      if (metrics_ != nullptr) {
        metrics_->GetCounter("autoscale/down")->Add();
      }
      st.last_rescale = now;
      st.down_streak = 0;
    } else {
      LOG_WARN << "autoscale: scale-down of " << stats.stage
               << " failed: " << s.ToString();
    }
  }
}

}  // namespace impeller
