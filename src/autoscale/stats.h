// Per-stage load statistics sampled by the TaskManager and consumed by the
// autoscaler. Kept dependency-free (plain ints/strings) so the autoscale
// library only needs impeller_common.
#ifndef IMPELLER_SRC_AUTOSCALE_STATS_H_
#define IMPELLER_SRC_AUTOSCALE_STATS_H_

#include <cstdint>
#include <string>

namespace impeller {

struct StageStats {
  std::string stage;
  uint32_t current_tasks = 0;
  uint32_t num_substreams = 0;
  bool stateful = false;
  // Sum over the stage's input substreams of (tail LSN + 1 - committed
  // consumed position). LSNs are global per shard, so this over-counts
  // records of co-located tags — it is a backlog *proxy*: zero iff every
  // input is fully consumed, and monotone in the real backlog.
  uint64_t input_lag = 0;
  // Cumulative count of commit rounds that fired at least one full
  // commit interval late (the task could not keep up with its inputs).
  uint64_t commit_overruns = 0;
};

}  // namespace impeller

#endif  // IMPELLER_SRC_AUTOSCALE_STATS_H_
