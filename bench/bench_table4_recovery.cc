// Reproduces Table 4: failure-recovery performance with and without
// asynchronous checkpointing. The paper runs NEXMark Q8 (many stateful
// operators) for 330 s at 80k/96k/112k events/s, fails the query at 300 s,
// and measures recovery time: baseline (full change-log replay) 3.8-4.8 s
// vs under 0.3 s with checkpoints — 14-16x faster, reading 27-30x fewer
// log entries.
//
// Scaled here (DESIGN.md §1): ~10x lower rates, a proportionally shorter
// run, and a snapshot interval scaled so the run covers the same number of
// snapshot periods. The reproduction target is the ratio, not the absolute
// seconds.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace impeller {
namespace bench {
namespace {

struct RecoveryOutcome {
  double recovery_sec = 0;        // max across restarted stateful tasks
  uint64_t entries_read = 0;      // change-log entries read during recovery
  uint64_t changes_applied = 0;
  bool used_checkpoint = false;
};

RecoveryOutcome RunOnce(double rate, bool checkpointing, double run_sec) {
  RunConfig config;
  config.system = System::kImpeller;
  config.query = 8;
  config.events_per_sec = rate;
  config.tasks_per_stage = 2;
  config.snapshot_interval = 2 * kSecond;  // scaled from the paper's 10 s

  EngineOptions options = MakeEngineOptions(config, BenchSeed());
  options.config.enable_checkpointing = checkpointing;
  Engine engine(std::move(options));
  auto plan = BuildNexmarkQuery(8, ScaledQueryOptions(config));
  if (!plan.ok() || !engine.Submit(std::move(*plan)).ok()) {
    return {};
  }
  NexmarkDriverOptions driver_options;
  driver_options.events_per_sec = rate;
  driver_options.flush_interval = 100 * kMillisecond;
  driver_options.seed = BenchSeed();
  auto driver = NexmarkDriver::Create(&engine, 8, driver_options);
  if (!driver.ok()) {
    return {};
  }
  (*driver)->Start();
  engine.clock()->SleepFor(static_cast<DurationNs>(run_sec * kSecond));

  // Fail the query: restart the stateful join tasks and measure recovery.
  RecoveryOutcome outcome;
  for (uint32_t i = 0; i < config.tasks_per_stage; ++i) {
    std::string task = "q8/join/" + std::to_string(i);
    auto stats = engine.tasks()->RestartTask(task);
    if (!stats.ok()) {
      std::fprintf(stderr, "restart %s failed: %s\n", task.c_str(),
                   stats.status().ToString().c_str());
      continue;
    }
    outcome.recovery_sec = std::max(
        outcome.recovery_sec, static_cast<double>(stats->duration) / 1e9);
    outcome.entries_read += stats->changelog_entries_read;
    outcome.changes_applied += stats->changes_applied;
    outcome.used_checkpoint =
        outcome.used_checkpoint || stats->used_checkpoint;
  }
  (*driver)->Stop();
  engine.Stop();
  return outcome;
}

int Main() {
  std::vector<double> rates = {8000, 9600, 11200};
  double run_sec = FastMode() ? 8.0 : 20.0;
  std::printf(
      "Table 4: Q8 recovery with and without checkpointing "
      "(%.0fs run, snapshot every 2s)\n\n",
      run_sec);
  std::printf("%-22s", "input rate (events/s)");
  for (double r : rates) {
    std::printf(" %12.0f", r);
  }
  std::printf("\n%s\n", std::string(62, '-').c_str());

  std::vector<RecoveryOutcome> baseline, checkpointed;
  auto record = [](const char* series, double rate,
                   const RecoveryOutcome& o) {
    BenchPoint point;
    point.name = std::string(series) + "/" +
                 std::to_string(static_cast<int>(rate));
    point.ns_per_op = o.recovery_sec * 1e9;  // recovery time per failure
    point.ops_per_sec = o.recovery_sec > 0 ? 1.0 / o.recovery_sec : 0;
    char extra[160];
    std::snprintf(extra, sizeof(extra),
                  "\"entries_read\": %llu, \"changes_applied\": %llu, "
                  "\"used_checkpoint\": %s",
                  static_cast<unsigned long long>(o.entries_read),
                  static_cast<unsigned long long>(o.changes_applied),
                  o.used_checkpoint ? "true" : "false");
    point.extra = extra;
    BenchJson::Instance().Add(point);
  };
  for (double rate : rates) {
    baseline.push_back(RunOnce(rate, /*checkpointing=*/false, run_sec));
    record("baseline", rate, baseline.back());
    checkpointed.push_back(RunOnce(rate, /*checkpointing=*/true, run_sec));
    record("ckpt", rate, checkpointed.back());
  }
  std::printf("%-22s", "recovery: baseline(s)");
  for (const auto& o : baseline) {
    std::printf(" %12.3f", o.recovery_sec);
  }
  std::printf("\n%-22s", "recovery: +ckpt (s)");
  for (const auto& o : checkpointed) {
    std::printf(" %12.3f", o.recovery_sec);
  }
  std::printf("\n%-22s", "speedup");
  for (size_t i = 0; i < rates.size(); ++i) {
    double s = checkpointed[i].recovery_sec > 0
                   ? baseline[i].recovery_sec / checkpointed[i].recovery_sec
                   : 0;
    std::printf(" %11.1fx", s);
  }
  std::printf("\n%-22s", "entries: baseline");
  for (const auto& o : baseline) {
    std::printf(" %12lu", static_cast<unsigned long>(o.entries_read));
  }
  std::printf("\n%-22s", "entries: +ckpt");
  for (const auto& o : checkpointed) {
    std::printf(" %12lu", static_cast<unsigned long>(o.entries_read));
  }
  std::printf("\n%-22s", "entry reduction");
  for (size_t i = 0; i < rates.size(); ++i) {
    double s = checkpointed[i].entries_read > 0
                   ? static_cast<double>(baseline[i].entries_read) /
                         static_cast<double>(checkpointed[i].entries_read)
                   : 0;
    std::printf(" %11.1fx", s);
  }
  std::printf(
      "\n\nPaper (300s run, 10s snapshots): baseline 3.86-4.76s vs\n"
      "0.27-0.30s with checkpoints (14-16x); 27-30x fewer entries read.\n"
      "The entry ratio scales with run length / snapshot interval. Note on\n"
      "wall time: the paper's replay streams the change log from storage\n"
      "nodes (bandwidth-bound), so its recovery seconds track entries read;\n"
      "this simulator's log is in-process, so replay runs at memory speed\n"
      "and the entries-read reduction is the faithful point of comparison.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace impeller

int main(int argc, char** argv) {
  impeller::bench::InitBench(&argc, argv);
  return impeller::bench::Main();
}
