// Chaos recovery bench: NEXMark Q1 under a seeded adversarial fault
// schedule vs the same run fault-free, for every protocol. Reports wall
// time to a fully committed output, the fault and retry counters, and
// whether the committed output stayed byte-identical — the throughput-side
// view of what tests/chaos_test.cc asserts. kUnsafe gets only benign
// faults (no crashes): without progress tracking a crash loses state by
// design (Fig. 9), so its row measures delay/retry absorption only.
//
// Usage: bench_chaos_recovery [--seed=N]   (also IMPELLER_BENCH_SEED)
#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/fault/fault.h"
#include "src/nexmark/events.h"

namespace impeller {
namespace bench {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultSchedule;

constexpr uint32_t kTasksPerStage = 2;
constexpr size_t kChunk = 40;

size_t NumEvents() { return FastMode() ? 200 : 400; }

std::vector<Bid> MakeBids() {
  std::vector<Bid> bids;
  bids.reserve(NumEvents());
  for (size_t i = 0; i < NumEvents(); ++i) {
    Bid bid;
    bid.auction = 1000 + i % 37;
    bid.bidder = i;
    bid.price = 100 + static_cast<int64_t>(i) * 7;
    bid.channel = "chaos";
    bid.url = "https://bid/" + std::to_string(i);
    bid.date_time = kSecond + static_cast<TimeNs>(i) * kMillisecond;
    bids.push_back(std::move(bid));
  }
  return bids;
}

std::vector<std::string> CrashPoints(ProtocolKind protocol) {
  switch (protocol) {
    case ProtocolKind::kProgressMarking:
      return {"task/commit/pre_marker", "task/commit/post_marker",
              "task/flush/pre", "task/flush/post"};
    case ProtocolKind::kKafkaTxn:
      return {"task/flush/pre", "task/flush/post", "txn/phase2",
              "txn/post_commit"};
    case ProtocolKind::kAlignedCheckpoint:
      return {"task/flush/pre", "task/flush/post", "task/checkpoint/mid",
              "barrier/inject"};
    case ProtocolKind::kUnsafe:
      return {};
  }
  return {};
}

// Mirrors the chaos test's schedule derivation: benign delay/error/
// duplicate schedules for everyone, two seed-chosen crash points for the
// exactly-once protocols.
std::vector<FaultSchedule> DeriveSchedules(ProtocolKind protocol,
                                           uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ull +
          static_cast<uint64_t>(protocol) * 0x100000001B3ull);
  std::vector<FaultSchedule> out;
  {
    FaultSchedule s;
    s.point = "log/append";
    s.kind = FaultKind::kDelay;
    s.delay = static_cast<DurationNs>(rng.NextRange(1, 4)) * kMillisecond;
    s.every_n = static_cast<uint64_t>(rng.NextRange(30, 60));
    s.max_fires = 5;
    out.push_back(s);
  }
  {
    FaultSchedule s;
    s.point = "log/append";
    s.kind = FaultKind::kError;
    s.every_n = static_cast<uint64_t>(rng.NextRange(20, 40));
    s.max_fires = 3;
    out.push_back(s);
  }
  {
    FaultSchedule s;
    s.point = "log/read";
    s.kind = FaultKind::kDuplicate;
    s.detail_substr = "bids";
    s.every_n = static_cast<uint64_t>(rng.NextRange(40, 80));
    s.max_fires = 3;
    out.push_back(s);
  }
  std::vector<std::string> points = CrashPoints(protocol);
  if (!points.empty()) {
    size_t first = rng.NextBounded(points.size());
    size_t second =
        (first + 1 + rng.NextBounded(points.size() - 1)) % points.size();
    for (size_t idx : {first, second}) {
      FaultSchedule s;
      s.point = points[idx];
      s.kind = FaultKind::kCrash;
      s.at_hit = static_cast<uint64_t>(rng.NextRange(2, 10));
      s.max_fires = 1;
      out.push_back(s);
    }
  }
  return out;
}

std::vector<std::string> CollectCommitted(Engine& engine) {
  std::vector<std::string> lines;
  for (uint32_t sub = 0; sub < kTasksPerStage; ++sub) {
    auto consumer = engine.NewEgressConsumer("convert", sub);
    if (!consumer.ok()) {
      return {};
    }
    auto records = (*consumer)->PollAll();
    if (!records.ok()) {
      return {};
    }
    for (const auto& r : *records) {
      lines.push_back(std::string(r.data.key) + "|" +
                      std::string(r.data.value));
    }
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

struct ChaosRun {
  double seconds = 0;       // feed start -> fully committed output
  bool converged = false;   // every input committed exactly once
  uint64_t fault_fires = 0;
  uint64_t crashes = 0;
  uint64_t retries = 0;
  uint64_t exhausted = 0;
  std::vector<std::string> lines;
};

ChaosRun RunOnce(ProtocolKind protocol, uint64_t seed,
                 std::vector<FaultSchedule> schedules) {
  EngineOptions options;
  options.config.protocol = protocol;
  options.config.commit_interval = 20 * kMillisecond;
  options.config.snapshot_interval = 200 * kMillisecond;
  options.config.output_flush_interval = 5 * kMillisecond;
  options.config.poll_interval = kMillisecond;
  options.config.timer_interval = 10 * kMillisecond;
  options.config.heartbeat_interval = 10 * kMillisecond;
  options.config.failure_timeout = 250 * kMillisecond;
  options.config.auto_restart = true;
  options.config.log_shards = BenchShards();
  options.config.sched_workers = BenchWorkers();
  options.name = "chaos-bench";
  Engine engine(std::move(options));

  NexmarkQueryOptions query_options;
  query_options.tasks_per_stage = kTasksPerStage;
  auto plan = BuildNexmarkQuery(1, query_options);
  if (!plan.ok() || !engine.Submit(std::move(*plan)).ok()) {
    return {};
  }
  auto producer = engine.NewProducer("chaos-gen", "bids");
  if (!producer.ok()) {
    return {};
  }

  std::vector<std::string> crash_points = CrashPoints(protocol);
  Clock* clock = engine.clock();
  std::vector<Bid> bids = MakeBids();
  ChaosRun run;
  TimeNs start = clock->Now();
  FaultInjector::Get().Arm(std::move(schedules), seed, engine.metrics());
  for (size_t i = 0; i < bids.size(); ++i) {
    (*producer)->Send(std::to_string(bids[i].auction), EncodeBid(bids[i]),
                      bids[i].date_time);
    if ((i + 1) % kChunk == 0 || i + 1 == bids.size()) {
      for (int attempt = 0; attempt < 500 && (*producer)->buffered() > 0;
           ++attempt) {
        if (!(*producer)->Flush().ok()) {
          clock->SleepFor(2 * kMillisecond);
        }
      }
      clock->SleepFor(15 * kMillisecond);
    }
  }
  clock->SleepFor(100 * kMillisecond);  // let late crash schedules fire
  run.fault_fires = FaultInjector::Get().TotalFires();
  for (const auto& point : crash_points) {
    run.crashes += FaultInjector::Get().FireCount(point);
  }
  FaultInjector::Get().Disarm();

  TimeNs deadline = clock->Now() + 30 * kSecond;
  while (clock->Now() < deadline) {
    auto lines = CollectCommitted(engine);
    if (std::set<std::string>(lines.begin(), lines.end()).size() >=
        bids.size()) {
      run.converged = true;
      break;
    }
    clock->SleepFor(5 * kMillisecond);
  }
  run.seconds = static_cast<double>(clock->Now() - start) / 1e9;
  run.retries = engine.metrics()->GetCounter("retry/retries")->Get();
  run.exhausted = engine.metrics()->GetCounter("retry/exhausted")->Get();
  engine.Stop();
  run.lines = CollectCommitted(engine);
  return run;
}

int Main() {
  uint64_t seed = BenchSeed();
  std::printf(
      "Chaos recovery: NEXMark Q1, %zu events, seed %llu\n"
      "(clean = fault-free run; chaos = seeded schedule: append delay "
      "spikes,\ntransient append errors, duplicate redeliveries, and two "
      "crash points\nper exactly-once protocol; kUnsafe: benign faults "
      "only)\n\n",
      NumEvents(), static_cast<unsigned long long>(seed));
  std::printf("%-14s %9s %9s %9s %7s %8s %10s  %s\n", "protocol",
              "clean(s)", "chaos(s)", "slowdown", "faults", "crashes",
              "retries", "committed output");
  std::printf("%s\n", std::string(92, '-').c_str());

  for (ProtocolKind protocol :
       {ProtocolKind::kProgressMarking, ProtocolKind::kKafkaTxn,
        ProtocolKind::kAlignedCheckpoint, ProtocolKind::kUnsafe}) {
    ChaosRun clean = RunOnce(protocol, seed, {});
    ChaosRun chaos = RunOnce(protocol, seed, DeriveSchedules(protocol, seed));
    const char* verdict =
        !clean.converged || !chaos.converged ? "DID NOT CONVERGE"
        : chaos.lines == clean.lines         ? "identical"
                                             : "DIVERGED";
    std::printf("%-14s %9.2f %9.2f %8.1fx %7llu %8llu %10llu  %s\n",
                ProtocolKindName(protocol), clean.seconds, chaos.seconds,
                clean.seconds > 0 ? chaos.seconds / clean.seconds : 0.0,
                static_cast<unsigned long long>(chaos.fault_fires),
                static_cast<unsigned long long>(chaos.crashes),
                static_cast<unsigned long long>(chaos.retries),
                verdict);
    BenchPoint point;
    point.name = std::string(ProtocolKindName(protocol)) + "/chaos";
    point.ns_per_op = chaos.seconds * 1e9;  // time to fully committed output
    point.ops_per_sec =
        chaos.seconds > 0 ? NumEvents() / chaos.seconds : 0;
    char extra[200];
    std::snprintf(extra, sizeof(extra),
                  "\"clean_sec\": %.3f, \"chaos_sec\": %.3f, "
                  "\"faults\": %llu, \"crashes\": %llu, \"retries\": %llu, "
                  "\"verdict\": \"%s\"",
                  clean.seconds, chaos.seconds,
                  static_cast<unsigned long long>(chaos.fault_fires),
                  static_cast<unsigned long long>(chaos.crashes),
                  static_cast<unsigned long long>(chaos.retries), verdict);
    point.extra = extra;
    BenchJson::Instance().Add(point);
  }
  std::printf(
      "\nEvery exactly-once protocol must read \"identical\": injected "
      "faults may\ncost recovery time but can never surface in the "
      "committed stream (§3.3-§3.5).\nReplay any row bit-for-bit with "
      "--seed=%llu.\n",
      static_cast<unsigned long long>(seed));
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace impeller

int main(int argc, char** argv) {
  impeller::bench::InitBench(&argc, argv);
  return impeller::bench::Main();
}
