// Reproduces Figure 7: p50/p99 event-time latency as a function of input
// throughput for NEXMark Q1-Q8, comparing Impeller against Kafka Streams
// (emulated: txn protocol on the Kafka-latency log), the Kafka Streams
// transaction protocol inside Impeller, and aligned checkpointing.
//
// Paper shape: Q1/Q2 p50s are similar across systems with Impeller's p99
// staying flat to higher rates; for stateful Q3-Q8 Impeller's p50 is
// 1.3-5.4x lower and it sustains 1.3-5.0x higher input rates before the
// p99 cutoff (60 ms for Q1-2, 1 s for Q3-8). Input rates here are ~10x
// below the paper's (single host); see DESIGN.md §1.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace impeller {
namespace bench {
namespace {

std::vector<double> RatesFor(int query) {
  // Roughly 10x below the paper's sweeps, adjusted per query weight.
  std::vector<double> rates;
  switch (query) {
    case 1:
    case 2:
      rates = {8000, 16000, 24000, 32000};
      break;
    case 4:
    case 6:
      rates = {2000, 4000, 6000, 9000};
      break;
    default:
      rates = {3000, 6000, 9000, 12000};
      break;
  }
  if (FastMode()) {
    rates = {rates[0], rates[2]};
  }
  return rates;
}

int Main(int only_query) {
  const System systems[] = {System::kImpeller, System::kKafkaStreams,
                            System::kKafkaTxn, System::kAlignedCkpt};
  std::printf(
      "Figure 7: NEXMark event-time latency vs input rate "
      "(commit interval 100ms)\n");
  for (int query = 1; query <= 8; ++query) {
    if (only_query != 0 && query != only_query) {
      continue;
    }
    std::printf("\nQ%d  %-16s", query, "rate (events/s):");
    for (double rate : RatesFor(query)) {
      std::printf(" %10.0f", rate);
    }
    std::printf("\n");
    for (System system : systems) {
      std::printf("  %-18s p50:", SystemName(system));
      std::vector<RunResult> results;
      for (double rate : RatesFor(query)) {
        RunConfig config;
        config.system = system;
        config.query = query;
        config.events_per_sec = rate;
        results.push_back(RunPoint(config));
        std::printf(" %8sms%s", Ms(results.back().p50).c_str(),
                    results.back().saturated ? "*" : " ");
        std::fflush(stdout);
      }
      std::printf("\n  %-18s p99:", "");
      for (const RunResult& r : results) {
        std::printf(" %8sms%s", Ms(r.p99).c_str(), r.saturated ? "*" : " ");
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\n'*' marks points past the paper's latency cutoff (p99 > 60ms for\n"
      "Q1-2, > 1s for Q3-8), i.e. the saturation knee of Figure 7.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace impeller

// Extra local flag: --query=N restricts the sweep to one NEXMark query
// (the shard-scaling acceptance run uses --query=1).
int main(int argc, char** argv) {
  impeller::bench::InitBench(&argc, argv);
  int only_query = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--query=", 0) == 0) {
      only_query = std::atoi(argv[i] + 8);
    }
  }
  return impeller::bench::Main(only_query);
}
