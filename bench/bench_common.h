// Shared harness for the paper-reproduction benchmarks (§5): runs a NEXMark
// query on a fresh engine at a fixed input rate for a fixed duration and
// reports p50/p99 event-time latency, exactly as Figures 7-9 do.
//
// Scale note (DESIGN.md §1): the latency models keep the paper's
// millisecond-scale log and RPC latencies, but input rates are ~10x below
// the paper's (one host, one core vs 13 EC2 nodes). Shapes — who wins, by
// what factor, where the latency knee sits — are the reproduction target,
// not absolute event rates.
//
// Env knobs:
//   IMPELLER_BENCH_SECONDS  measurement seconds per point (default 3)
//   IMPELLER_BENCH_WARMUP   warmup seconds per point (default 1)
//   IMPELLER_BENCH_FAST     if set, halves durations and prunes sweeps
//   IMPELLER_BENCH_TRACE    path: enable span tracing and write a Chrome
//                           trace_event JSON covering every run point
//                           (open in about:tracing or ui.perfetto.dev)
//   IMPELLER_BENCH_METRICS  path: write a machine-readable JSON with one
//                           entry per run point (config, p50/p99, and the
//                           full MetricsRegistry snapshot incl. the
//                           "log/*" shared-log counters)
//   IMPELLER_TRACE_RING     per-thread trace ring capacity (default 8192)
//   IMPELLER_BENCH_SEED     master seed (default 7); the --seed=N flag
//                           (parsed by InitBench) takes precedence. One
//                           seed drives the NEXMark generator, the
//                           calibrated latency models, and any fault
//                           schedules, so a run replays bit-for-bit.
//   IMPELLER_SHARDS         shared-log shard count (default 1); the
//                           --shards=N flag takes precedence
//   IMPELLER_WORKERS        scheduler worker count (default 0 = one per
//                           hardware thread); --workers=N takes precedence
//   IMPELLER_TASKS          tasks per stage (default 2); --tasks=N takes
//                           precedence. More tasks = more concurrent
//                           append rounds, which is what saturates a
//                           1-shard sequencer
//   IMPELLER_BENCH_JSON     output path for the machine-readable result
//                           file (default BENCH_<name>.json in the cwd)
#ifndef IMPELLER_BENCH_BENCH_COMMON_H_
#define IMPELLER_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/engine.h"
#include "src/nexmark/driver.h"
#include "src/nexmark/queries.h"
#include "src/obs/metrics_export.h"
#include "src/obs/trace.h"
#include "src/obs/trace_export.h"

namespace impeller {
namespace bench {

inline double EnvSeconds(const char* name, double fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) {
    return fallback;
  }
  return std::atof(v);
}

inline bool FastMode() { return std::getenv("IMPELLER_BENCH_FAST") != nullptr; }

inline uint64_t& MutableBenchSeed() {
  static uint64_t seed = [] {
    const char* v = std::getenv("IMPELLER_BENCH_SEED");
    return v != nullptr ? std::strtoull(v, nullptr, 10) : 7ull;
  }();
  return seed;
}

// The master seed every bench derives from: generator, latency models,
// fault schedules. Set by --seed / IMPELLER_BENCH_SEED.
inline uint64_t BenchSeed() { return MutableBenchSeed(); }

// Strict count parser shared by the flag and env paths: `what` names the
// knob in the error. Rejects junk, trailing characters, and values outside
// [min_value, max_value] — a zero-shard or negative-worker engine would
// otherwise misconfigure silently (shards clamp, workers wrap).
inline uint32_t ParseCount(const char* what, const char* value,
                           long long min_value, long long max_value) {
  char* end = nullptr;
  long long parsed = std::strtoll(value, &end, 10);
  if (end == value || *end != '\0' || parsed < min_value ||
      parsed > max_value) {
    std::fprintf(stderr,
                 "impeller: invalid %s '%s': expected an integer in "
                 "[%lld, %lld]\n",
                 what, value, min_value, max_value);
    std::exit(2);
  }
  return static_cast<uint32_t>(parsed);
}

inline uint32_t EnvCount(const char* name, uint32_t fallback,
                         long long min_value, long long max_value) {
  const char* v = std::getenv(name);
  if (v == nullptr) {
    return fallback;
  }
  return ParseCount(name, v, min_value, max_value);
}

inline constexpr long long kMaxShards = 1024;
inline constexpr long long kMaxWorkers = 4096;
inline constexpr long long kMaxTasks = 4096;

inline uint32_t& MutableBenchShards() {
  static uint32_t shards = EnvCount("IMPELLER_SHARDS", 1, 1, kMaxShards);
  return shards;
}

inline uint32_t& MutableBenchWorkers() {
  // 0 is valid: one worker per hardware thread.
  static uint32_t workers = EnvCount("IMPELLER_WORKERS", 0, 0, kMaxWorkers);
  return workers;
}

// Shared-log shard count every bench engine uses (--shards /
// IMPELLER_SHARDS; default 1 = the seed's single sequencer).
inline uint32_t BenchShards() { return MutableBenchShards(); }

// Scheduler worker count (--workers / IMPELLER_WORKERS; default 0 = one
// worker per hardware thread).
inline uint32_t BenchWorkers() { return MutableBenchWorkers(); }

inline uint32_t& MutableBenchTasks() {
  static uint32_t tasks = EnvCount("IMPELLER_TASKS", 2, 1, kMaxTasks);
  return tasks;
}

// Tasks per stage (--tasks / IMPELLER_TASKS; default 2, the paper's
// baseline parallelism).
inline uint32_t BenchTasks() { return MutableBenchTasks(); }

// Set by InitBench from argv[0]: "bench_micro_log" -> "micro_log".
inline std::string& MutableBenchName() {
  static std::string name = "bench";
  return name;
}

// Parses and strips "--seed=N" / "--shards=N" / "--workers=N" (and their
// two-token forms) from argv so every bench binary shares the same flags —
// google-benchmark binaries call this *before* benchmark::Initialize, which
// rejects unknown flags.
inline void InitBench(int* argc, char** argv) {
  if (*argc > 0) {
    std::string_view bin = argv[0];
    if (size_t slash = bin.rfind('/'); slash != std::string_view::npos) {
      bin.remove_prefix(slash + 1);
    }
    if (bin.rfind("bench_", 0) == 0) {
      bin.remove_prefix(6);
    }
    MutableBenchName() = std::string(bin);
  }
  auto u64 = [](const char* s) { return std::strtoull(s, nullptr, 10); };
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      MutableBenchSeed() = u64(argv[i] + 7);
    } else if (arg == "--seed" && i + 1 < *argc) {
      MutableBenchSeed() = u64(argv[++i]);
    } else if (arg.rfind("--shards=", 0) == 0) {
      MutableBenchShards() = ParseCount("--shards", argv[i] + 9, 1, kMaxShards);
    } else if (arg == "--shards" && i + 1 < *argc) {
      MutableBenchShards() = ParseCount("--shards", argv[++i], 1, kMaxShards);
    } else if (arg.rfind("--workers=", 0) == 0) {
      MutableBenchWorkers() =
          ParseCount("--workers", argv[i] + 10, 0, kMaxWorkers);
    } else if (arg == "--workers" && i + 1 < *argc) {
      MutableBenchWorkers() =
          ParseCount("--workers", argv[++i], 0, kMaxWorkers);
    } else if (arg.rfind("--tasks=", 0) == 0) {
      MutableBenchTasks() = ParseCount("--tasks", argv[i] + 8, 1, kMaxTasks);
    } else if (arg == "--tasks" && i + 1 < *argc) {
      MutableBenchTasks() = ParseCount("--tasks", argv[++i], 1, kMaxTasks);
    } else {
      argv[out++] = argv[i];
    }
  }
  argv[out] = nullptr;
  *argc = out;
}

inline double MeasureSeconds() {
  double s = EnvSeconds("IMPELLER_BENCH_SECONDS", 3.0);
  return FastMode() ? s / 2 : s;
}

inline double WarmupSeconds() {
  double s = EnvSeconds("IMPELLER_BENCH_WARMUP", 1.0);
  return FastMode() ? s / 2 : s;
}

// Which system configuration a series runs (§5.1).
enum class System {
  kImpeller,      // progress marking on the Boki-model shared log
  kKafkaStreams,  // txn protocol on the Kafka-latency log (emulated KS)
  kKafkaTxn,      // Kafka Streams' txn protocol inside Impeller (§5.3.2)
  kAlignedCkpt,   // Flink-style aligned checkpointing (§5.3.3)
  kUnsafe,        // no progress tracking (§5.3.4)
};

inline const char* SystemName(System s) {
  switch (s) {
    case System::kImpeller:
      return "impeller";
    case System::kKafkaStreams:
      return "kafka-streams";
    case System::kKafkaTxn:
      return "ks-txn-impeller";
    case System::kAlignedCkpt:
      return "aligned-ckpt";
    case System::kUnsafe:
      return "unsafe";
  }
  return "?";
}

struct RunConfig {
  System system = System::kImpeller;
  int query = 1;
  double events_per_sec = 10000;
  DurationNs commit_interval = 100 * kMillisecond;
  DurationNs snapshot_interval = 10 * kSecond;
  uint32_t tasks_per_stage = BenchTasks();
  uint32_t shards = BenchShards();    // shared-log shard count
  uint32_t workers = BenchWorkers();  // scheduler workers (0 = hardware)
  double warmup_sec = WarmupSeconds();
  double measure_sec = MeasureSeconds();
};

struct RunResult {
  int64_t p50 = 0;   // ns
  int64_t p99 = 0;   // ns
  uint64_t outputs = 0;
  uint64_t inputs = 0;
  bool saturated = false;  // p99 beyond the paper's cutoff for the query
};

// One entry of the machine-readable result file BENCH_<name>.json.
struct BenchPoint {
  std::string name;         // series/case, e.g. "impeller/q1/10000"
  double ns_per_op = 0;     // mean time per operation/output
  double ops_per_sec = 0;   // throughput
  int64_t p50_ns = 0;       // 0 when the case has no latency distribution
  int64_t p99_ns = 0;
  std::string extra;        // extra JSON fields: `"k": v, "k2": v2` (no
                            // trailing comma), appended to the entry
};

// Accumulates BenchPoints and rewrites BENCH_<name>.json after every Add,
// so interrupted sweeps still leave a parseable file. The header records
// the run configuration (seed, shards, workers, fast mode) once; every
// bench binary emits this file unconditionally — CI uploads them as
// artifacts and the shard-scaling acceptance check compares two of them.
class BenchJson {
 public:
  static BenchJson& Instance() {
    static BenchJson json;
    return json;
  }

  void Add(const BenchPoint& p) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                  "\"ops_per_sec\": %.1f, \"p50_ns\": %lld, \"p99_ns\": %lld",
                  p.name.c_str(), p.ns_per_op, p.ops_per_sec,
                  static_cast<long long>(p.p50_ns),
                  static_cast<long long>(p.p99_ns));
    std::string entry = buf;
    if (!p.extra.empty()) {
      entry += ", " + p.extra;
    }
    entry += "}";
    points_.push_back(std::move(entry));
    WriteAll();
  }

  std::string path() const {
    const char* override_path = std::getenv("IMPELLER_BENCH_JSON");
    if (override_path != nullptr) {
      return override_path;
    }
    return "BENCH_" + MutableBenchName() + ".json";
  }

 private:
  void WriteAll() const {
    char head[256];
    std::snprintf(head, sizeof(head),
                  "{\"bench\": \"%s\", \"seed\": %llu, \"shards\": %u, "
                  "\"workers\": %u, \"fast\": %s,\n \"points\": [\n",
                  MutableBenchName().c_str(),
                  static_cast<unsigned long long>(BenchSeed()), BenchShards(),
                  BenchWorkers(), FastMode() ? "true" : "false");
    std::string body = head;
    for (size_t i = 0; i < points_.size(); ++i) {
      body += points_[i];
      body += i + 1 < points_.size() ? ",\n" : "\n";
    }
    body += "]}\n";
    if (Status st = obs::WriteFile(path().c_str(), body); !st.ok()) {
      std::fprintf(stderr, "bench json export failed: %s\n",
                   st.ToString().c_str());
    }
  }

  std::vector<std::string> points_;
};

// Observability session shared by every run point of a bench binary: when
// IMPELLER_BENCH_TRACE / IMPELLER_BENCH_METRICS are set, each point drains
// the span collector into one growing Chrome trace and appends a JSON entry
// (config + metrics snapshot) rewritten after every point, so interrupted
// sweeps still leave usable files.
class BenchObs {
 public:
  static BenchObs& Instance() {
    static BenchObs* obs = new BenchObs();  // writer closed via atexit
    return *obs;
  }

  void OnRunStart() {
    if (trace_path_ != nullptr) {
      obs::TraceCollector::Get().Enable();
    }
  }

  void OnRunEnd(Engine* engine, const RunConfig& config,
                const RunResult& result) {
    if (trace_path_ != nullptr) {
      if (!trace_writer_.is_open()) {
        if (Status st = trace_writer_.Open(trace_path_); !st.ok()) {
          std::fprintf(stderr, "trace export disabled: %s\n",
                       st.ToString().c_str());
          trace_path_ = nullptr;
        }
      }
      if (trace_writer_.is_open()) {
        (void)trace_writer_.Append(obs::TraceCollector::Get().Drain());
      }
    }
    if (metrics_path_ == nullptr) {
      return;
    }
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "{\"system\": \"%s\", \"query\": %d, "
                  "\"events_per_sec\": %.0f, \"commit_interval_ms\": %.1f, "
                  "\"p50_ns\": %lld, \"p99_ns\": %lld, \"inputs\": %llu, "
                  "\"outputs\": %llu, \"saturated\": %s,\n\"metrics\": ",
                  SystemName(config.system), config.query,
                  config.events_per_sec, config.commit_interval / 1e6,
                  static_cast<long long>(result.p50),
                  static_cast<long long>(result.p99),
                  static_cast<unsigned long long>(result.inputs),
                  static_cast<unsigned long long>(result.outputs),
                  result.saturated ? "true" : "false");
    if (!points_.empty()) {
      points_ += ",\n";
    }
    points_ += buf;
    points_ += obs::MetricsToJson(engine->metrics());
    points_ += "}";
    Status st = obs::WriteFile(metrics_path_,
                               "{\"points\": [\n" + points_ + "\n]}\n");
    if (!st.ok()) {
      std::fprintf(stderr, "metrics export failed: %s\n",
                   st.ToString().c_str());
    }
  }

 private:
  BenchObs()
      : trace_path_(std::getenv("IMPELLER_BENCH_TRACE")),
        metrics_path_(std::getenv("IMPELLER_BENCH_METRICS")) {
    std::atexit([] { (void)Instance().trace_writer_.Close(); });
  }

  const char* trace_path_;
  const char* metrics_path_;
  obs::ChromeTraceWriter trace_writer_;
  std::string points_;  // accumulated per-point JSON entries
};

inline EngineOptions MakeEngineOptions(const RunConfig& config,
                                       uint64_t seed) {
  EngineOptions options;
  switch (config.system) {
    case System::kImpeller:
      options.config.protocol = ProtocolKind::kProgressMarking;
      options.log_latency = std::make_shared<CalibratedLatencyModel>(
          CalibratedLatencyModel::BokiParams(), seed);
      break;
    case System::kKafkaStreams:
      options.config.protocol = ProtocolKind::kKafkaTxn;
      options.log_latency = std::make_shared<CalibratedLatencyModel>(
          CalibratedLatencyModel::KafkaParams(), seed);
      break;
    case System::kKafkaTxn:
      options.config.protocol = ProtocolKind::kKafkaTxn;
      options.log_latency = std::make_shared<CalibratedLatencyModel>(
          CalibratedLatencyModel::BokiParams(), seed);
      break;
    case System::kAlignedCkpt: {
      options.config.protocol = ProtocolKind::kAlignedCheckpoint;
      options.log_latency = std::make_shared<CalibratedLatencyModel>(
          CalibratedLatencyModel::BokiParams(), seed);
      // Checkpoint-store writes pay a remote synchronous flush (Kvrocks
      // with a synced WAL, §5.1). Operator state scales with the input
      // rate, and our rates are ~10x the paper's below scale, so the
      // per-byte cost is scaled up 10x to preserve the paper's
      // checkpoint-cost : commit-interval ratio (the quantity that drives
      // aligned checkpointing's latency behaviour, §5.3.3).
      CalibratedLatencyParams kv;
      kv.ack_median = static_cast<DurationNs>(1.2 * kMillisecond);
      kv.ack_sigma = 0.2;
      kv.per_byte_ns = 150.0;  // sync WAL flush path; ~67 MB/s at paper-scale state sizes
      options.kv_latency =
          std::make_shared<CalibratedLatencyModel>(kv, seed + 1);
      break;
    }
    case System::kUnsafe:
      options.config.protocol = ProtocolKind::kUnsafe;
      options.log_latency = std::make_shared<CalibratedLatencyModel>(
          CalibratedLatencyModel::BokiParams(), seed);
      break;
  }
  if (options.kv_latency == nullptr) {
    CalibratedLatencyParams kv;
    kv.ack_median = static_cast<DurationNs>(1.2 * kMillisecond);
    kv.ack_sigma = 0.2;
    kv.per_byte_ns = 8.0;
    options.kv_latency =
        std::make_shared<CalibratedLatencyModel>(kv, seed + 1);
  }
  options.config.commit_interval = config.commit_interval;
  options.config.snapshot_interval = config.snapshot_interval;
  options.config.log_shards = config.shards;
  options.config.sched_workers = config.workers;
  return options;
}

inline NexmarkQueryOptions ScaledQueryOptions(const RunConfig& config) {
  NexmarkQueryOptions q;
  q.tasks_per_stage = config.tasks_per_stage;
  // Paper windows: Q5 10s/2s, Q7 1min, Q8 10s. Q7 is scaled to 10s so each
  // point observes multiple windows.
  q.q5_window = 10 * kSecond;
  q.q5_slide = 2 * kSecond;
  q.q7_window = 10 * kSecond;
  q.q8_window = 10 * kSecond;
  q.join_window = 10 * kSecond;
  return q;
}

// Runs one point on an already-built QueryPlan. `series` replaces the
// system name in the emitted BenchPoint ("<series>/q<N>/<rate>") so
// alternative lowerings of the same query (e.g. the declarative-plan
// ablation's fused vs unfused builds) land as distinct rows in the same
// JSON file. The sink metrics ("lat/q<N>", "out/q<N>") are named by the
// query's sink, not its stage layout, so any lowering reports here.
// `extra_json`, when nonempty, is appended to the point's extra fields
// (`"k": v` pairs, no trailing comma).
inline RunResult RunPreparedPoint(const RunConfig& config, QueryPlan plan,
                                  const std::string& series,
                                  uint64_t seed = BenchSeed(),
                                  const std::string& extra_json = "") {
  BenchObs::Instance().OnRunStart();
  Engine engine(MakeEngineOptions(config, seed));
  if (Status st = engine.Submit(std::move(plan)); !st.ok()) {
    std::fprintf(stderr, "submit failed: %s\n", st.ToString().c_str());
    return {};
  }
  NexmarkDriverOptions driver_options;
  driver_options.events_per_sec = config.events_per_sec;
  // Generators flush every 10 ms for Q1-2 and 100 ms for Q3-8 (§5.3).
  driver_options.flush_interval =
      config.query <= 2 ? 10 * kMillisecond : 100 * kMillisecond;
  driver_options.seed = seed;
  auto driver = NexmarkDriver::Create(&engine, config.query, driver_options);
  if (!driver.ok()) {
    std::fprintf(stderr, "driver failed: %s\n",
                 driver.status().ToString().c_str());
    return {};
  }

  Clock* clock = engine.clock();
  (*driver)->Start();
  clock->SleepFor(static_cast<DurationNs>(config.warmup_sec * kSecond));
  std::string sink = NexmarkSinkName(config.query);
  LatencyHistogram* latency = engine.metrics()->Histogram("lat/" + sink);
  Counter* outputs = engine.metrics()->GetCounter("out/" + sink);
  latency->Reset();
  uint64_t outputs_before = outputs->Get();
  clock->SleepFor(static_cast<DurationNs>(config.measure_sec * kSecond));

  RunResult result;
  result.p50 = latency->p50();
  result.p99 = latency->p99();
  result.outputs = outputs->Get() - outputs_before;
  (*driver)->Stop();
  result.inputs = (*driver)->events_sent();
  engine.Stop();
  int64_t cutoff = config.query <= 2 ? 60 * kMillisecond : kSecond;
  // saturated means "this point is past the knee": either the sink's p99
  // blew through the paper's cutoff, or the sink produced nothing at all
  // (p50 == 0). The second arm has a benign cause in fast mode: q3-q8 use
  // 10 s windows but IMPELLER_BENCH_FAST measures for ~1.5 s, so no window
  // can fire before the run ends — the pipeline is consuming, not stalled.
  // The JSON row therefore always carries the consumed-input rate, and a
  // saturated row records which arm tripped, so the trajectory stays
  // informative even when the output-side numbers are all zero.
  result.saturated = result.p99 > cutoff || result.p50 == 0;
  BenchObs::Instance().OnRunEnd(&engine, config, result);

  BenchPoint point;
  {
    char name[128];
    std::snprintf(name, sizeof(name), "%s/q%d/%.0f", series.c_str(),
                  config.query, config.events_per_sec);
    point.name = name;
  }
  double throughput =
      config.measure_sec > 0 ? result.outputs / config.measure_sec : 0;
  point.ops_per_sec = throughput;
  point.ns_per_op = throughput > 0 ? 1e9 / throughput : 0;
  point.p50_ns = result.p50;
  point.p99_ns = result.p99;
  {
    double run_sec = config.warmup_sec + config.measure_sec;
    double input_rate = run_sec > 0 ? result.inputs / run_sec : 0;
    char extra[384];
    std::snprintf(extra, sizeof(extra),
                  "\"system\": \"%s\", \"query\": %d, "
                  "\"events_per_sec\": %.0f, \"commit_interval_ms\": %.1f, "
                  "\"tasks_per_stage\": %u, \"inputs\": %llu, "
                  "\"outputs\": %llu, \"input_rate\": %.0f, "
                  "\"saturated\": %s",
                  SystemName(config.system), config.query,
                  config.events_per_sec, config.commit_interval / 1e6,
                  config.tasks_per_stage,
                  static_cast<unsigned long long>(result.inputs),
                  static_cast<unsigned long long>(result.outputs), input_rate,
                  result.saturated ? "true" : "false");
    point.extra = extra;
    if (result.saturated) {
      point.extra += result.p50 == 0 ? ", \"saturation_cause\": \"no_output\""
                                     : ", \"saturation_cause\": \"latency\"";
    }
    if (!extra_json.empty()) {
      point.extra += ", " + extra_json;
    }
  }
  BenchJson::Instance().Add(point);
  return result;
}

// Runs one (system, query, rate) point on the imperative query build and
// reports sink latency.
inline RunResult RunPoint(const RunConfig& config,
                          uint64_t seed = BenchSeed()) {
  auto plan = BuildNexmarkQuery(config.query, ScaledQueryOptions(config));
  if (!plan.ok()) {
    std::fprintf(stderr, "plan build failed: %s\n",
                 plan.status().ToString().c_str());
    return {};
  }
  return RunPreparedPoint(config, std::move(*plan),
                          SystemName(config.system), seed);
}

inline std::string Ms(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", ns / 1e6);
  return buf;
}

}  // namespace bench
}  // namespace impeller

#endif  // IMPELLER_BENCH_BENCH_COMMON_H_
