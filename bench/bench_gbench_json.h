// Bridges google-benchmark results into the shared BENCH_<name>.json file:
// a ConsoleReporter subclass that forwards every real (non-aggregate,
// non-errored) run to BenchJson while still printing the usual console
// table. Use from a gbench main:
//
//   impeller::bench::InitBench(&argc, argv);
//   benchmark::Initialize(&argc, argv);
//   impeller::bench::JsonForwardingReporter reporter;
//   benchmark::RunSpecifiedBenchmarks(&reporter);
#ifndef IMPELLER_BENCH_BENCH_GBENCH_JSON_H_
#define IMPELLER_BENCH_BENCH_GBENCH_JSON_H_

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/bench_common.h"

namespace impeller {
namespace bench {

class JsonForwardingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || !run.aggregate_name.empty() ||
          run.iterations == 0) {
        continue;
      }
      BenchPoint point;
      point.name = run.benchmark_name();
      point.ns_per_op =
          run.real_accumulated_time / static_cast<double>(run.iterations) *
          1e9;
      // Prefer the benchmark's own items/s counter (SetItemsProcessed);
      // fall back to the inverse of per-op time.
      auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        point.ops_per_sec = items->second.value;
      } else if (point.ns_per_op > 0) {
        point.ops_per_sec = 1e9 / point.ns_per_op;
      }
      // Forward selected counters into the JSON row: throughput plus the
      // data-plane allocation metrics (DESIGN.md §12) that the regression
      // gate (tools/check_bench_regression.py) reads.
      auto forward = [&](const char* counter, const char* json_key) {
        auto it = run.counters.find(counter);
        if (it == run.counters.end()) {
          return;
        }
        char buf[80];
        std::snprintf(buf, sizeof(buf), "\"%s\": %.3f", json_key,
                      it->second.value);
        if (!point.extra.empty()) {
          point.extra += ", ";
        }
        point.extra += buf;
      };
      forward("bytes_per_second", "bytes_per_sec");
      forward("allocs_per_record", "allocs_per_record");
      forward("bytes_copied_per_record", "bytes_copied_per_record");
      BenchJson::Instance().Add(point);
    }
    benchmark::ConsoleReporter::ReportRuns(runs);
  }
};

}  // namespace bench
}  // namespace impeller

#endif  // IMPELLER_BENCH_BENCH_GBENCH_JSON_H_
