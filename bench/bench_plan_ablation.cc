// Plan-layer fusion ablation: the same declarative NEXMark plan lowered
// twice — optimizer with chain fusion on (the default) vs off (every
// operator its own stage, every operator boundary a log append/read round
// trip) — run at a fixed input rate, reporting p50/p99 event-time latency.
//
// Expected shape (paper Table 2): each unfused boundary adds roughly one
// log round trip to the critical path, so the unfused build's p50 sits
// ~hops_eliminated log-latencies above the fused build's on stage-chain
// queries (Q1: filter -> map fuses 2 edges; Q4's join/aggregate chain
// fuses 4).
//
// Emits BENCH_plan_ablation.json with "fused/q<N>/<rate>" and
// "unfused/q<N>/<rate>" rows plus a "hops_eliminated" field per row.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "src/nexmark/plan_queries.h"

namespace impeller {
namespace bench {
namespace {

double FixedRateFor(int query) {
  // Modest rates: the ablation measures the per-hop latency adder, not
  // saturation, so both builds must run comfortably below their knees.
  switch (query) {
    case 1:
    case 2:
      return 8000;
    default:
      return 2000;
  }
}

RunResult RunAblationPoint(const RunConfig& config, bool fuse) {
  auto built = nexmark::BuildNexmarkPlanQuery(
      config.query, ScaledQueryOptions(config), fuse);
  if (!built.ok()) {
    std::fprintf(stderr, "plan build failed: %s\n",
                 built.status().ToString().c_str());
    return {};
  }
  char extra[96];
  std::snprintf(extra, sizeof(extra),
                "\"fused\": %s, \"stages\": %zu, \"hops_eliminated\": %d",
                fuse ? "true" : "false", built->lowered.stages.size(),
                built->lowered.hops_eliminated);
  return RunPreparedPoint(config, std::move(built->lowered.query),
                          fuse ? "fused" : "unfused", BenchSeed(), extra);
}

int Main() {
  std::vector<int> queries = {1, 2, 4};
  if (FastMode()) {
    queries = {1};
  }

  std::printf(
      "Plan ablation: fused vs unfused lowering of the declarative plans\n"
      "(each fused edge deletes one log append/read hop from the path)\n");
  for (int query : queries) {
    auto fused_build = nexmark::BuildNexmarkPlanQuery(query, {}, true);
    auto unfused_build = nexmark::BuildNexmarkPlanQuery(query, {}, false);
    if (!fused_build.ok() || !unfused_build.ok()) {
      std::fprintf(stderr, "q%d plan build failed\n", query);
      return 1;
    }
    std::printf("\nQ%d (%.0f events/s): fused %zu stage(s) [%d hop(s) "
                "eliminated], unfused %zu stage(s)\n",
                query, FixedRateFor(query), fused_build->lowered.stages.size(),
                fused_build->lowered.hops_eliminated,
                unfused_build->lowered.stages.size());
    for (bool fuse : {true, false}) {
      RunConfig config;
      config.system = System::kImpeller;
      config.query = query;
      config.events_per_sec = FixedRateFor(query);
      RunResult r = RunAblationPoint(config, fuse);
      std::printf("  %-8s p50 %8sms   p99 %8sms   outputs %llu%s\n",
                  fuse ? "fused" : "unfused", Ms(r.p50).c_str(),
                  Ms(r.p99).c_str(),
                  static_cast<unsigned long long>(r.outputs),
                  r.saturated ? "   (saturated)" : "");
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nReading: the unfused build pays one extra log round trip per\n"
      "eliminated edge; fused p50 should sit well below unfused p50.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace impeller

int main(int argc, char** argv) {
  impeller::bench::InitBench(&argc, argv);
  return impeller::bench::Main();
}
