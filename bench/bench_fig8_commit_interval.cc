// Reproduces Figure 8: p50/p99 event-time latency at commit intervals of
// 100 / 50 / 25 / 10 ms, at a fixed per-query input rate, for Impeller's
// progress marking vs the Kafka Streams transaction protocol (both inside
// Impeller, §5.3.2).
//
// Paper shape: at 100 ms the two protocols are close (phase two overlaps
// with processing); as the interval shrinks the transaction protocol's
// extra appends and synchronous phase stop hiding, and progress marking
// wins by up to 1.4x at p50 and 3.1x at p99 (Q4 at 10 ms).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace impeller {
namespace bench {
namespace {

double FixedRateFor(int query) {
  // A rate that keeps both protocols comfortable at the 100 ms interval
  // (the paper picks the largest rate where they are within 10%).
  switch (query) {
    case 1:
    case 2:
      return 12000;
    case 4:
    case 6:
      return 2500;
    default:
      return 5000;
  }
}

int Main() {
  std::vector<DurationNs> intervals = {100 * kMillisecond, 50 * kMillisecond,
                                       25 * kMillisecond, 10 * kMillisecond};
  if (FastMode()) {
    intervals = {100 * kMillisecond, 10 * kMillisecond};
  }
  const System systems[] = {System::kImpeller, System::kKafkaTxn};

  std::printf(
      "Figure 8: event-time latency vs commit interval (fixed rate)\n");
  for (int query = 1; query <= 8; ++query) {
    std::printf("\nQ%d (%.0f events/s)  %-10s", query, FixedRateFor(query),
                "interval:");
    for (DurationNs i : intervals) {
      std::printf(" %8ldms", i / kMillisecond);
    }
    std::printf("\n");
    for (System system : systems) {
      std::vector<RunResult> results;
      std::printf("  %-18s p50:", SystemName(system));
      for (DurationNs interval : intervals) {
        RunConfig config;
        config.system = system;
        config.query = query;
        config.events_per_sec = FixedRateFor(query);
        config.commit_interval = interval;
        results.push_back(RunPoint(config));
        std::printf(" %8sms", Ms(results.back().p50).c_str());
        std::fflush(stdout);
      }
      std::printf("\n  %-18s p99:", "");
      for (const RunResult& r : results) {
        std::printf(" %8sms", Ms(r.p99).c_str());
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nPaper: progress marking's advantage grows as the interval\n"
      "shrinks; at 10ms on Q4, txn p50 = 1.4x and p99 = 3.1x Impeller's.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace impeller

int main(int argc, char** argv) {
  impeller::bench::InitBench(&argc, argv);
  return impeller::bench::Main();
}
