// Live-rescaling bench (DESIGN.md §13): a stateful keyed-aggregate stage is
// rescaled mid-run while a producer keeps feeding it, measuring what the
// paper's Impeller design makes cheap — reconfiguration through the shared
// log instead of a stop-the-world restart.
//
// Part A (per marker protocol): a NEXMark-Q3-style per-key running
// aggregate runs at a steady rate; the stage is scaled 2->4 (state split)
// and then 4->1 (state merge) while outputs are sampled on arrival. The
// *handoff blackout* is the output-arrival gap spanning the rescale
// instant: the window in which the old generation has cut its final marker
// but the new generation has not yet replayed ownership from the changelog.
// State-transfer throughput is the changelog bytes the new generation
// re-appended ("rescale/state_bytes") divided by that blackout.
//
// Part B: the autoscaler closes the loop on a NEXMark-Q4-style per-category
// maximum under a hot-key skew ramp. The *reaction time* is ramp start ->
// the controller's first scale-up decision (EWMA of input lag crossing the
// threshold for up_ticks consecutive ticks).
//
// Reported in BENCH_rescale.json:
//   rescale/<proto>/up/blackout    ns_per_op = blackout across 2->4
//   rescale/<proto>/down/blackout  ns_per_op = blackout across 4->1
//   rescale/autoscale/reaction     ns_per_op = skew ramp -> first decision
//
// Usage: bench_rescale [--seed=N] [--shards=N]   (also IMPELLER_BENCH_SEED
// / IMPELLER_SHARDS / IMPELLER_BENCH_FAST)
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/threading.h"
#include "src/core/engine.h"

namespace impeller {
namespace bench {
namespace {

double Scale() { return FastMode() ? 0.5 : 1.0; }

constexpr uint32_t kSubstreams = 8;
constexpr int kKeys = 64;

AggregateFn RunningCount() {
  AggregateFn fn;
  fn.init = [] { return std::string("0"); };
  fn.add = [](std::string_view acc, const StreamRecord&) {
    return std::to_string(std::stoll(std::string(acc)) + 1);
  };
  return fn;
}

AggregateFn RunningMax() {
  AggregateFn fn;
  fn.init = [] { return std::string("0"); };
  fn.add = [](std::string_view acc, const StreamRecord& r) {
    int64_t prev = std::stoll(std::string(acc));
    int64_t next = std::stoll(std::string(r.value));
    return std::to_string(std::max(prev, next));
  };
  return fn;
}

// Q3-flavoured pipeline: per-key running aggregate over an over-partitioned
// stateful stage, with a stateless formatter downstream so rescaling also
// rewires a consumer stage.
Result<QueryPlan> CountPlan(uint32_t agg_tasks) {
  QueryBuilder qb("rq");
  qb.Ingress("events");
  qb.AddStage("agg", agg_tasks)
      .WithSubstreams(kSubstreams)
      .ReadsFrom({"events"})
      .Aggregate("c", RunningCount())
      .WritesTo("counts");
  qb.AddStage("fmt", 2)
      .ReadsFrom({"counts"})
      .Map([](StreamRecord r) { return r; })
      .Sink("rq");
  return qb.Build();
}

// The gap between consecutive output arrivals that spans `at` — the
// blackout a downstream consumer observes across the rescale instant.
DurationNs GapAcross(const std::vector<TimeNs>& times, TimeNs at) {
  TimeNs before = 0;
  TimeNs after = 0;
  for (TimeNs t : times) {
    if (t <= at) {
      before = t;
    } else {
      after = t;
      break;
    }
  }
  if (before == 0 || after == 0) {
    return 0;
  }
  return after - before;
}

// Longest inter-arrival gap restricted to [from, to]: the fault-free
// cadence the blackout is compared against.
DurationNs MaxGap(const std::vector<TimeNs>& times, TimeNs from, TimeNs to) {
  DurationNs max_gap = 0;
  TimeNs prev = 0;
  bool have_prev = false;
  for (TimeNs t : times) {
    if (t < from || t > to) {
      continue;
    }
    if (have_prev) {
      max_gap = std::max<DurationNs>(max_gap, t - prev);
    }
    prev = t;
    have_prev = true;
  }
  return max_gap;
}

struct RescaleMeasurement {
  DurationNs blackout = 0;       // output gap spanning the rescale call
  DurationNs baseline_gap = 0;   // worst fault-free gap before the rescale
  DurationNs call_wall = 0;      // synchronous RescaleStage() wall time
  uint64_t state_bytes = 0;      // changelog bytes re-appended by new gen
  uint64_t handoffs = 0;         // handoff sources consumed
};

// One engine run: warm at a steady rate, rescale `agg` from->to mid-stream,
// keep feeding, and extract the blackout from the sampled output arrivals.
Result<RescaleMeasurement> MeasureRescale(ProtocolKind protocol,
                                          uint32_t from_tasks,
                                          uint32_t to_tasks, uint64_t seed) {
  EngineOptions options;
  options.config.protocol = protocol;
  options.config.log_shards = BenchShards();
  options.config.sched_workers = BenchWorkers();
  options.config.commit_interval = 20 * kMillisecond;
  options.config.output_flush_interval = 5 * kMillisecond;
  options.config.snapshot_interval = kSecond;
  // No fault injection here: the restart monitor would race the planned
  // reconfiguration and add restarts to the measurement.
  options.config.auto_restart = false;
  options.log_latency = std::make_shared<CalibratedLatencyModel>(
      CalibratedLatencyModel::BokiParams(), seed);
  Engine engine(std::move(options));
  auto plan = CountPlan(from_tasks);
  if (!plan.ok()) {
    return plan.status();
  }
  IMPELLER_RETURN_IF_ERROR(engine.Submit(std::move(*plan)));
  auto producer = engine.NewProducer("gen", "events");
  if (!producer.ok()) {
    return producer.status();
  }

  Clock* clock = engine.clock();
  Counter* out = engine.metrics()->GetCounter("out/rq");
  std::atomic<bool> stop{false};

  // Feeder: steady keyed traffic in small flushed batches, well below the
  // stage's capacity — the blackout should measure the reconfiguration
  // (final commit + ownership replay), not how much backlog piled up
  // before the graceful drain.
  JoiningThread feeder([&] {
    uint64_t n = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 0; i < 40; ++i) {
        (*producer)->Send("u" + std::to_string(n % kKeys), "x");
        ++n;
      }
      (void)(*producer)->Flush();
      clock->SleepFor(8 * kMillisecond);
    }
  });

  // Sampler: timestamp every observed increase of the committed-output
  // counter. Inter-arrival gaps in this series are the consumer-visible
  // stall signal; the log-side lag is not (metalog visibility).
  std::vector<TimeNs> arrivals;
  JoiningThread sampler([&] {
    uint64_t last = out->Get();
    while (!stop.load(std::memory_order_relaxed)) {
      uint64_t now_count = out->Get();
      if (now_count > last) {
        arrivals.push_back(clock->Now());
        last = now_count;
      }
      clock->SleepFor(kMillisecond / 2);
    }
  });

  const DurationNs warm = static_cast<DurationNs>(0.6 * Scale() * kSecond);
  const DurationNs settle = static_cast<DurationNs>(0.8 * Scale() * kSecond);
  const TimeNs t_start = clock->Now();
  clock->SleepFor(warm);

  const uint64_t bytes_before =
      engine.metrics()->GetCounter("rescale/state_bytes")->Get();
  const uint64_t handoffs_before =
      engine.metrics()->GetCounter("rescale/handoffs")->Get();
  const TimeNs t_rescale = clock->Now();
  IMPELLER_RETURN_IF_ERROR(engine.tasks()->RescaleStage("agg", to_tasks));
  const TimeNs t_done = clock->Now();
  clock->SleepFor(settle);
  const TimeNs t_settled = clock->Now();

  stop.store(true);
  feeder.Join();
  sampler.Join();
  engine.Stop();

  RescaleMeasurement m;
  // The handoff finishes asynchronously after RescaleStage returns (the new
  // generation replays ownership in its own StepInit), so the blackout is
  // the worst output stall anywhere across the reconfiguration window, not
  // just the gap spanning the call instant.
  m.blackout = std::max(GapAcross(arrivals, t_rescale),
                        MaxGap(arrivals, t_rescale, t_settled));
  m.baseline_gap = MaxGap(arrivals, t_start, t_rescale);
  m.call_wall = t_done - t_rescale;
  m.state_bytes =
      engine.metrics()->GetCounter("rescale/state_bytes")->Get() -
      bytes_before;
  m.handoffs =
      engine.metrics()->GetCounter("rescale/handoffs")->Get() -
      handoffs_before;
  return m;
}

void ReportRescale(const char* proto_name, const char* direction,
                   uint32_t from_tasks, uint32_t to_tasks,
                   const RescaleMeasurement& m) {
  const double blackout_sec = m.blackout / 1e9;
  const double mb_per_sec =
      blackout_sec > 0 ? m.state_bytes / 1e6 / blackout_sec : 0;
  std::printf("%-10s %u->%u  blackout %8.2f ms  call %6.2f ms  "
              "state %7llu B  %8.2f MB/s  baseline gap %6.2f ms\n",
              proto_name, from_tasks, to_tasks, m.blackout / 1e6,
              m.call_wall / 1e6,
              static_cast<unsigned long long>(m.state_bytes), mb_per_sec,
              m.baseline_gap / 1e6);
  BenchPoint point;
  point.name = std::string("rescale/") + proto_name + "/" + direction +
               "/blackout";
  point.ns_per_op = static_cast<double>(m.blackout);
  char extra[256];
  std::snprintf(extra, sizeof(extra),
                "\"from_tasks\": %u, \"to_tasks\": %u, "
                "\"rescale_call_ns\": %lld, \"state_bytes\": %llu, "
                "\"state_mb_per_sec\": %.2f, \"handoffs\": %llu, "
                "\"baseline_gap_ns\": %lld",
                from_tasks, to_tasks, static_cast<long long>(m.call_wall),
                static_cast<unsigned long long>(m.state_bytes), mb_per_sec,
                static_cast<unsigned long long>(m.handoffs),
                static_cast<long long>(m.baseline_gap));
  point.extra = extra;
  BenchJson::Instance().Add(point);
}

// Part B: hot-key skew ramp against the autoscaler. Returns reaction time
// (ramp start -> first up decision), or 0 if the controller never reacted.
Result<DurationNs> MeasureAutoscaleReaction(uint64_t seed,
                                            uint32_t* tasks_after,
                                            uint64_t* events_sent) {
  EngineOptions options;
  options.config.protocol = ProtocolKind::kProgressMarking;
  options.config.log_shards = BenchShards();
  options.config.sched_workers = BenchWorkers();
  options.config.commit_interval = 20 * kMillisecond;
  options.config.output_flush_interval = 5 * kMillisecond;
  options.config.snapshot_interval = kSecond;
  options.config.auto_restart = false;
  options.config.autoscale.enabled = true;
  options.config.autoscale.tick_interval = 10 * kMillisecond;
  options.config.autoscale.up_threshold = 200;
  options.config.autoscale.up_ticks = 2;
  options.config.autoscale.cooldown = 100 * kMillisecond;
  options.config.autoscale.down_ticks = 100000;  // no churn mid-measurement
  options.log_latency = std::make_shared<CalibratedLatencyModel>(
      CalibratedLatencyModel::BokiParams(), seed);
  Engine engine(std::move(options));

  // Q4 flavour: maximum bid price per auction category, over-partitioned so
  // the controller has somewhere to grow.
  QueryBuilder qb("q4max");
  qb.Ingress("bids");
  qb.AddStage("catmax", 1)
      .WithSubstreams(kSubstreams)
      .ReadsFrom({"bids"})
      .Aggregate("max", RunningMax())
      .Sink("q4max");
  auto plan = qb.Build();
  if (!plan.ok()) {
    return plan.status();
  }
  IMPELLER_RETURN_IF_ERROR(engine.Submit(std::move(*plan)));
  auto producer = engine.NewProducer("bidgen", "bids");
  if (!producer.ok()) {
    return producer.status();
  }

  Clock* clock = engine.clock();
  uint64_t sent = 0;
  auto send = [&](int category) {
    (*producer)->Send("cat" + std::to_string(category),
                      std::to_string(100 + sent % 900));
    ++sent;
  };

  // Steady uniform phase: well under the lag threshold, no reaction.
  const TimeNs t_uniform_end =
      clock->Now() + static_cast<DurationNs>(0.3 * Scale() * kSecond);
  while (clock->Now() < t_uniform_end) {
    for (int i = 0; i < 50; ++i) {
      send(static_cast<int>(sent % 8));
    }
    IMPELLER_RETURN_IF_ERROR((*producer)->Flush().status());
    clock->SleepFor(5 * kMillisecond);
  }
  if (engine.autoscaler()->decisions_up() != 0) {
    return InternalError("controller reacted during the uniform phase");
  }

  // Skew ramp: one hot category takes most of the traffic at a flood rate
  // the single task cannot absorb.
  const TimeNs t_ramp = clock->Now();
  const TimeNs deadline = t_ramp + 20 * kSecond;
  while (engine.autoscaler()->decisions_up() == 0 &&
         clock->Now() < deadline) {
    for (int i = 0; i < 2000; ++i) {
      send(i % 10 == 0 ? static_cast<int>(sent % 8) : 0);
    }
    IMPELLER_RETURN_IF_ERROR((*producer)->Flush().status());
    clock->SleepFor(5 * kMillisecond);
  }
  const DurationNs reaction =
      engine.autoscaler()->decisions_up() > 0 ? clock->Now() - t_ramp : 0;

  *tasks_after = 0;
  for (const auto& s : engine.tasks()->CollectStageStats()) {
    if (s.stage == "catmax") {
      *tasks_after = s.current_tasks;
    }
  }
  *events_sent = sent;
  engine.Stop();
  return reaction;
}

int Main() {
  const uint64_t seed = BenchSeed();
  std::printf("Live rescaling: %u shards, seed %llu%s\n"
              "stateful keyed aggregate rescaled mid-run; blackout is the\n"
              "output-arrival gap across the rescale instant.\n\n",
              BenchShards(), static_cast<unsigned long long>(seed),
              FastMode() ? " (fast)" : "");

  struct Proto {
    ProtocolKind kind;
    const char* name;
  };
  const Proto protos[] = {{ProtocolKind::kProgressMarking, "impeller"},
                          {ProtocolKind::kKafkaTxn, "kafka-txn"}};
  bool engaged = true;
  for (const auto& proto : protos) {
    auto up = MeasureRescale(proto.kind, 2, 4, seed);
    if (!up.ok()) {
      std::fprintf(stderr, "%s scale-up failed: %s\n", proto.name,
                   up.status().ToString().c_str());
      return 1;
    }
    ReportRescale(proto.name, "up", 2, 4, *up);
    auto down = MeasureRescale(proto.kind, 4, 1, seed + 1);
    if (!down.ok()) {
      std::fprintf(stderr, "%s scale-down failed: %s\n", proto.name,
                   down.status().ToString().c_str());
      return 1;
    }
    ReportRescale(proto.name, "down", 4, 1, *down);
    // Every marker-protocol rescale must actually move state through the
    // changelog; a zero means the handoff path silently didn't run.
    if (up->handoffs == 0 || down->handoffs == 0 || up->state_bytes == 0) {
      engaged = false;
    }
  }

  uint32_t tasks_after = 0;
  uint64_t events_sent = 0;
  auto reaction = MeasureAutoscaleReaction(seed, &tasks_after, &events_sent);
  if (!reaction.ok()) {
    std::fprintf(stderr, "autoscale run failed: %s\n",
                 reaction.status().ToString().c_str());
    return 1;
  }
  std::printf("\nautoscaler reaction %8.2f ms  tasks 1->%u  "
              "events %llu\n",
              *reaction / 1e6, tasks_after,
              static_cast<unsigned long long>(events_sent));
  BenchPoint point;
  point.name = "rescale/autoscale/reaction";
  point.ns_per_op = static_cast<double>(*reaction);
  char extra[128];
  std::snprintf(extra, sizeof(extra),
                "\"tasks_after\": %u, \"events\": %llu", tasks_after,
                static_cast<unsigned long long>(events_sent));
  point.extra = extra;
  BenchJson::Instance().Add(point);

  std::printf("\nThe blackout is bounded by the old generation's final "
              "commit plus the\nchangelog replay of the migrated ranges; "
              "unaffected stages never stall.\nReplay with --seed=%llu.\n",
              static_cast<unsigned long long>(seed));
  if (!engaged || *reaction == 0 || tasks_after <= 1) {
    std::fprintf(stderr,
                 "RESCALE DID NOT ENGAGE: engaged=%d reaction=%lld "
                 "tasks_after=%u\n",
                 engaged ? 1 : 0, static_cast<long long>(*reaction),
                 tasks_after);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace impeller

int main(int argc, char** argv) {
  impeller::bench::InitBench(&argc, argv);
  return impeller::bench::Main();
}
