// Microbenchmarks for the shared-log substrate: append/read throughput with
// the latency model disabled (pure data-structure cost), tag-index fanout,
// selective reads, conditional appends, and trim.
#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>

#include "bench/bench_common.h"
#include "bench/bench_gbench_json.h"

#include "src/obs/trace.h"
#include "src/sharedlog/partitioned_log.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {
namespace {

void BM_SharedLogAppend(benchmark::State& state) {
  SharedLog log;
  std::string payload(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    AppendRequest req;
    req.tags = {"t"};
    req.payload = payload;
    benchmark::DoNotOptimize(log.Append(std::move(req)));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SharedLogAppend)->Arg(100)->Arg(1024)->Arg(16 * 1024);

void BM_SharedLogAppendTraced(benchmark::State& state) {
  // Tracing-overhead check: the same append path as BM_SharedLogAppend with
  // span recording runtime-enabled. Compare ns/op against BM_SharedLogAppend
  // at the same arg — the delta is the full tracing cost (two clock reads
  // plus a thread-local ring write per span) and must stay under 1%.
  obs::TraceCollector::Get().Enable();
  SharedLog log;
  std::string payload(static_cast<size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    AppendRequest req;
    req.tags = {"t"};
    req.payload = payload;
    benchmark::DoNotOptimize(log.Append(std::move(req)));
  }
  obs::TraceCollector::Get().Disable();
  (void)obs::TraceCollector::Get().Drain();
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SharedLogAppendTraced)->Arg(100)->Arg(1024)->Arg(16 * 1024);

void BM_SharedLogAppendBatch(benchmark::State& state) {
  SharedLog log;
  const size_t batch = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<AppendRequest> reqs(batch);
    for (auto& r : reqs) {
      r.tags = {"t"};
      r.payload = "payload-100-bytes-";
    }
    benchmark::DoNotOptimize(log.AppendBatch(reqs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_SharedLogAppendBatch)->Arg(16)->Arg(256);

void BM_SharedLogMultiTagAppend(benchmark::State& state) {
  // The atomic multi-substream append behind progress markers (§3.2): cost
  // scales with the number of tags indexed.
  SharedLog log;
  std::vector<std::string> tags;
  for (int i = 0; i < state.range(0); ++i) {
    tags.push_back("tag/" + std::to_string(i));
  }
  for (auto _ : state) {
    AppendRequest req;
    req.tags = tags;
    req.payload = "marker";
    benchmark::DoNotOptimize(log.Append(std::move(req)));
  }
}
BENCHMARK(BM_SharedLogMultiTagAppend)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_SharedLogSelectiveRead(benchmark::State& state) {
  // Selective reads must not scan unrelated records: interleave the target
  // tag with `range` records of noise per hit.
  SharedLog log;
  const int noise = static_cast<int>(state.range(0));
  for (int i = 0; i < 10000; ++i) {
    AppendRequest req;
    req.tags = {i % (noise + 1) == 0 ? "hot" : "cold"};
    req.payload = "p";
    (void)log.Append(std::move(req));
  }
  Lsn cursor = 0;
  for (auto _ : state) {
    auto entry = log.ReadNext("hot", cursor);
    if (entry.ok()) {
      cursor = entry->lsn + 1;
    } else {
      cursor = 0;
    }
  }
}
BENCHMARK(BM_SharedLogSelectiveRead)->Arg(0)->Arg(9)->Arg(99);

void BM_SharedLogConditionalAppend(benchmark::State& state) {
  SharedLog log;
  log.MetaPut("inst/t", 1);
  for (auto _ : state) {
    AppendRequest req;
    req.tags = {"t"};
    req.payload = "p";
    req.cond_key = "inst/t";
    req.cond_value = 1;
    benchmark::DoNotOptimize(log.Append(std::move(req)));
  }
}
BENCHMARK(BM_SharedLogConditionalAppend);

void BM_SharedLogTrim(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    SharedLog log;
    for (int i = 0; i < 10000; ++i) {
      AppendRequest req;
      req.tags = {"t" + std::to_string(i % 32)};
      req.payload = "p";
      (void)log.Append(std::move(req));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(log.Trim(5000));
  }
}
BENCHMARK(BM_SharedLogTrim)->Unit(benchmark::kMicrosecond)->Iterations(50);

void BM_ShardedLogAppend(benchmark::State& state) {
  // The shard-scaling series behind the acceptance numbers: concurrent
  // appenders against the Boki-calibrated latency model, log shard count
  // from --shards. Each thread appends under a tag placed on a distinct
  // shard (thread t % shards), so with shards >= threads the per-shard
  // sequencers overlap their modeled ack rounds; at 1 shard the single
  // sequencer serializes them. Throughput is the items/s counter.
  static std::atomic<SharedLog*> shared{nullptr};
  if (state.thread_index() == 0) {
    SharedLogOptions opts;
    opts.name = "bench";
    opts.shards = bench::BenchShards();
    opts.latency = std::make_shared<CalibratedLatencyModel>(
        CalibratedLatencyModel::BokiParams(), bench::BenchSeed());
    shared.store(new SharedLog(opts), std::memory_order_release);
  }
  SharedLog* log;
  while ((log = shared.load(std::memory_order_acquire)) == nullptr) {
    std::this_thread::yield();
  }
  // Pick a tag that lands on shard (thread % shards): probe candidate tags
  // until placement matches. With shards == 1 any tag works.
  uint32_t shards = bench::BenchShards();
  uint32_t want = static_cast<uint32_t>(state.thread_index()) % shards;
  std::string tag;
  for (int c = 0;; ++c) {
    tag = "shard-tag/" + std::to_string(c);
    if (log->ShardOfTag(tag) == want) {
      break;
    }
  }
  for (auto _ : state) {
    AppendRequest req;
    req.tags = {tag};
    req.payload = "payload-100-bytes-";
    benchmark::DoNotOptimize(log->Append(std::move(req)));
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    delete log;
    shared.store(nullptr, std::memory_order_release);
  }
}
BENCHMARK(BM_ShardedLogAppend)
    ->Threads(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_PartitionedLogAppend(benchmark::State& state) {
  PartitionedLog log;
  (void)log.CreateTopic("t", 4);
  uint32_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.Append("t", p++ % 4, "k", "payload"));
  }
}
BENCHMARK(BM_PartitionedLogAppend);

void BM_MetaIncrement(benchmark::State& state) {
  SharedLog log;
  for (auto _ : state) {
    benchmark::DoNotOptimize(log.MetaIncrement("inst/task"));
  }
}
BENCHMARK(BM_MetaIncrement);

}  // namespace
}  // namespace impeller

// Strip the shared --seed flag before google-benchmark sees argv: it
// rejects flags it does not know.
int main(int argc, char** argv) {
  impeller::bench::InitBench(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  impeller::bench::JsonForwardingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
