// Reproduces Figure 9 (+§5.3.4): the cost of exactly-once semantics.
// NEXMark Q5 latency vs input rate for Impeller with progress marking vs
// "unsafe" Impeller (progress marking disabled), plus the other baselines
// that appear in the figure.
//
// Paper shape: Impeller's p50 is 1.2-2.0x unsafe's and its p99 1.0-1.8x;
// marking adds 15-96 ms at p50 and 13-250 ms at p99. Both saturate at the
// same input rate (the protocol is not the throughput bottleneck).
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace impeller {
namespace bench {
namespace {

int Main() {
  std::vector<double> rates = {3000, 6000, 9000, 12000, 15000};
  if (FastMode()) {
    rates = {3000, 9000};
  }
  const System systems[] = {System::kImpeller, System::kUnsafe,
                            System::kKafkaTxn, System::kAlignedCkpt};

  std::printf("Figure 9: NEXMark Q5, safe vs unsafe Impeller\n");
  std::printf("%-18s %-10s", "system", "rate:");
  for (double r : rates) {
    std::printf(" %10.0f", r);
  }
  std::printf("\n");

  std::vector<RunResult> impeller_results;
  for (System system : systems) {
    std::vector<RunResult> results;
    std::printf("%-18s p50:      ", SystemName(system));
    for (double rate : rates) {
      RunConfig config;
      config.system = system;
      config.query = 5;
      config.events_per_sec = rate;
      results.push_back(RunPoint(config));
      std::printf(" %8sms%s", Ms(results.back().p50).c_str(),
                  results.back().saturated ? "*" : " ");
      std::fflush(stdout);
    }
    std::printf("\n%-18s p99:      ", "");
    for (const RunResult& r : results) {
      std::printf(" %8sms%s", Ms(r.p99).c_str(), r.saturated ? "*" : " ");
    }
    std::printf("\n");
    if (system == System::kImpeller) {
      impeller_results = results;
    }
    if (system == System::kUnsafe) {
      std::printf("%-18s          ", "safe/unsafe");
      for (size_t i = 0; i < results.size(); ++i) {
        double ratio =
            results[i].p50 > 0
                ? static_cast<double>(impeller_results[i].p50) /
                      static_cast<double>(results[i].p50)
                : 0.0;
        std::printf(" %9.2fx", ratio);
      }
      std::printf("  (paper: 1.2-2.0x at p50)\n");
    }
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace impeller

int main(int argc, char** argv) {
  impeller::bench::InitBench(&argc, argv);
  return impeller::bench::Main();
}
