// Shard-failover bench (DESIGN.md §10): writers append continuously to
// tags pinned on every shard of a 3-shard log while the fault injector
// permanently kills one shard mid-run. The failure detector seals the dead
// shard, the metalog bumps the placement epoch, and the victim writer's
// appends resume on a live shard — this bench measures the *append
// blackout*: the longest gap between two successful appends for the writer
// whose tag lived on the killed shard, i.e. how long failover keeps a
// client waiting. Afterwards the shard rejoins and writers spread back out.
//
// Reported in BENCH_shard_failover.json:
//   ns_per_op      the victim writer's blackout across the kill instant
//   p50_ns/p99_ns  SealShard wall time ("log/seal_latency")
//   extra          seals, epoch bumps, straggler bounces, retries, rejoins,
//                  the fault-free baseline gap for comparison
//
// Usage: bench_shard_failover [--seed=N] [--shards=N]   (N >= 2 shards;
// also IMPELLER_BENCH_SEED / IMPELLER_SHARDS / IMPELLER_BENCH_FAST)
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/retry.h"
#include "src/common/threading.h"
#include "src/fault/fault.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {
namespace bench {
namespace {

using fault::FaultInjector;
using fault::FaultKind;
using fault::FaultSchedule;

double Scale() { return FastMode() ? 0.5 : 1.0; }

// A tag the log places on shard `shard` at epoch 0 (same probing helper as
// the failover tests).
std::string TagOnShard(const SharedLog& log, uint32_t shard) {
  for (int c = 0;; ++c) {
    std::string tag = "w/" + std::to_string(shard) + "/" + std::to_string(c);
    if (log.ShardOfTag(tag) == shard) {
      return tag;
    }
  }
}

// Longest gap between consecutive successful appends, restricted to
// successes inside [from, to]. Returns 0 with fewer than two samples.
DurationNs MaxGap(const std::vector<TimeNs>& times, TimeNs from, TimeNs to) {
  DurationNs max_gap = 0;
  TimeNs prev = 0;
  bool have_prev = false;
  for (TimeNs t : times) {
    if (t < from || t > to) {
      continue;
    }
    if (have_prev) {
      max_gap = std::max<DurationNs>(max_gap, t - prev);
    }
    prev = t;
    have_prev = true;
  }
  return max_gap;
}

// The gap that spans `at`: last success at-or-before minus first success
// after. This is the blackout a client pinned to the dead shard observes.
DurationNs GapAcross(const std::vector<TimeNs>& times, TimeNs at) {
  TimeNs before = 0;
  TimeNs after = 0;
  for (TimeNs t : times) {
    if (t <= at) {
      before = t;
    } else {
      after = t;
      break;
    }
  }
  if (before == 0 || after == 0) {
    return 0;
  }
  return after - before;
}

int Main() {
  const uint64_t seed = BenchSeed();
  const uint32_t shards = std::max<uint32_t>(BenchShards(), 3);
  MutableBenchShards() = shards;  // the JSON header reflects the real count
  // Highest-numbered shard: its "/sN" probe detail is never a substring of
  // another shard's, so the kill schedule below matches exactly one shard.
  const uint32_t victim = shards - 1;

  MetricsRegistry metrics;
  SharedLogOptions options;
  options.name = "failover-bench";
  options.shards = shards;
  options.metrics = &metrics;
  options.latency = std::make_shared<CalibratedLatencyModel>(
      CalibratedLatencyModel::BokiParams(), seed);
  SharedLog log(std::move(options));
  Clock* clock = MonotonicClock::Get();

  // One writer per shard, each pinned (at epoch 0) to its own shard, so
  // exactly one writer rides the victim sequencer when it dies.
  std::vector<std::string> tags;
  for (uint32_t s = 0; s < shards; ++s) {
    tags.push_back(TagOnShard(log, s));
  }

  std::atomic<bool> stop{false};
  std::vector<std::vector<TimeNs>> success_times(shards);
  std::vector<std::unique_ptr<JoiningThread>> writers;
  for (uint32_t w = 0; w < shards; ++w) {
    writers.push_back(std::make_unique<JoiningThread>([&, w] {
      Retrier retrier(RetryPolicy{}, seed + w, clock, &metrics);
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::string payload = tags[w] + "#" + std::to_string(n++);
        auto lsn = retrier.Run("bench/append", [&]() -> Result<Lsn> {
          AppendRequest req;
          req.tags = {tags[w]};
          req.payload = payload;
          return log.Append(std::move(req));
        });
        if (lsn.ok()) {
          success_times[w].push_back(clock->Now());
        }
      }
    }));
  }

  // Phase 1 — warm, fault-free: establishes the baseline append cadence.
  const TimeNs t_start = clock->Now();
  clock->SleepFor(static_cast<DurationNs>(0.3 * Scale() * kSecond));

  // Phase 2 — kill: every admit on the victim shard fails from here on.
  FaultSchedule kill;
  kill.point = "log/shard/append";
  kill.kind = FaultKind::kError;
  kill.detail_substr = "/s" + std::to_string(victim);
  kill.probability = 1.0;
  kill.max_fires = 0;  // unlimited: permanent until the rejoin below
  const TimeNs t_kill = clock->Now();
  FaultInjector::Get().Arm({kill}, seed, &metrics);
  clock->SleepFor(static_cast<DurationNs>(1.0 * Scale() * kSecond));
  FaultInjector::Get().Disarm();

  // Phase 3 — recover: the shard comes back and rejoins the placement.
  Status rejoin = log.RejoinShard(victim);
  clock->SleepFor(static_cast<DurationNs>(0.3 * Scale() * kSecond));

  stop.store(true);
  for (auto& writer : writers) {
    writer->Join();
  }
  const TimeNs t_end = clock->Now();
  log.Close();

  SharedLogStats stats = log.stats();
  LatencyHistogram* seal_latency = metrics.Histogram("log/seal_latency");
  const DurationNs blackout = GapAcross(success_times[victim], t_kill);
  const DurationNs baseline =
      MaxGap(success_times[victim], t_start, t_kill);
  uint64_t total_appends = 0;
  for (const auto& times : success_times) {
    total_appends += times.size();
  }
  const double elapsed_sec = static_cast<double>(t_end - t_start) / 1e9;
  const uint64_t retries = metrics.GetCounter("retry/retries")->Get();

  std::printf(
      "Shard failover: %u shards, %u writers, seed %llu%s\n"
      "shard %u killed permanently mid-run, auto-sealed by the failure\n"
      "detector, rejoined after the fault clears.\n\n",
      shards, shards, static_cast<unsigned long long>(seed),
      FastMode() ? " (fast)" : "", victim);
  std::printf("%-28s %12s\n", "metric", "value");
  std::printf("%s\n", std::string(42, '-').c_str());
  std::printf("%-28s %10.2f ms\n", "append blackout (victim)", blackout / 1e6);
  std::printf("%-28s %10.2f ms\n", "baseline max gap", baseline / 1e6);
  std::printf("%-28s %10.2f ms\n", "seal latency p50",
              seal_latency->p50() / 1e6);
  std::printf("%-28s %12llu\n", "seals",
              static_cast<unsigned long long>(stats.seals));
  std::printf("%-28s %12llu\n", "epoch bumps",
              static_cast<unsigned long long>(stats.placement_epoch));
  std::printf("%-28s %12llu\n", "straggler bounces (kSealed)",
              static_cast<unsigned long long>(stats.sealed_appends));
  std::printf("%-28s %12llu\n", "rejoins",
              static_cast<unsigned long long>(stats.rejoins));
  std::printf("%-28s %12llu\n", "retries",
              static_cast<unsigned long long>(retries));
  std::printf("%-28s %12llu\n", "appends committed",
              static_cast<unsigned long long>(total_appends));
  std::printf("%-28s %11s\n", "rejoin status",
              rejoin.ok() ? "ok" : rejoin.ToString().c_str());

  BenchPoint point;
  point.name = "failover/blackout";
  point.ns_per_op = static_cast<double>(blackout);
  point.ops_per_sec = elapsed_sec > 0 ? total_appends / elapsed_sec : 0;
  point.p50_ns = seal_latency->p50();
  point.p99_ns = seal_latency->p99();
  char extra[256];
  std::snprintf(extra, sizeof(extra),
                "\"baseline_gap_ns\": %lld, \"seals\": %llu, "
                "\"epoch_bumps\": %llu, \"sealed_appends\": %llu, "
                "\"rejoins\": %llu, \"retries\": %llu, \"appends\": %llu",
                static_cast<long long>(baseline),
                static_cast<unsigned long long>(stats.seals),
                static_cast<unsigned long long>(stats.placement_epoch),
                static_cast<unsigned long long>(stats.sealed_appends),
                static_cast<unsigned long long>(stats.rejoins),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(total_appends));
  point.extra = extra;
  BenchJson::Instance().Add(point);

  std::printf(
      "\nThe blackout is bounded by detection (%d consecutive failed "
      "admits\nunder retry backoff) plus the seal protocol itself "
      "(seal_latency);\nwriters on live shards never stall. Replay with "
      "--seed=%llu.\n",
      FailoverOptions{}.suspect_after,
      static_cast<unsigned long long>(seed));
  if (stats.seals == 0 || blackout == 0) {
    std::fprintf(stderr, "FAILOVER DID NOT ENGAGE: seals=%llu blackout=%lld\n",
                 static_cast<unsigned long long>(stats.seals),
                 static_cast<long long>(blackout));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace impeller

int main(int argc, char** argv) {
  impeller::bench::InitBench(&argc, argv);
  return impeller::bench::Main();
}
