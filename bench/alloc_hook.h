// Global operator new/delete override that feeds obs::RecordAllocation so
// benchmarks can report allocs_per_record. Replaceable allocation functions
// must be defined in exactly one translation unit of the binary — include
// this header from the benchmark's main .cc file only. Production binaries
// never include it, so their allocation path is untouched.
#ifndef IMPELLER_BENCH_ALLOC_HOOK_H_
#define IMPELLER_BENCH_ALLOC_HOOK_H_

#include <cstdlib>
#include <new>

#include "src/obs/alloc_stats.h"

namespace impeller {
namespace bench {
inline void* HookedAlloc(std::size_t n) {
  obs::RecordAllocation(n);
  if (void* p = std::malloc(n ? n : 1)) {
    return p;
  }
  throw std::bad_alloc();
}

inline void* HookedAlignedAlloc(std::size_t n, std::align_val_t al) {
  obs::RecordAllocation(n);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(al), n) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
}  // namespace bench
}  // namespace impeller

void* operator new(std::size_t n) { return impeller::bench::HookedAlloc(n); }
void* operator new[](std::size_t n) { return impeller::bench::HookedAlloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return impeller::bench::HookedAlignedAlloc(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return impeller::bench::HookedAlignedAlloc(n, al);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  impeller::obs::RecordAllocation(n);
  return std::malloc(n ? n : 1);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  impeller::obs::RecordAllocation(n);
  return std::malloc(n ? n : 1);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // IMPELLER_BENCH_ALLOC_HOOK_H_
