// Microbenchmarks for the engine's hot paths: record/marker codecs — with
// the §3.5 compact-vs-full marker ablation — state-store operations,
// commit-tracker classification, window assignment, and the NEXMark
// generator.
#include <benchmark/benchmark.h>

// Exactly one TU per binary may define the replacement operator new/delete;
// for this binary it is this file, enabling allocs_per_record counters.
#include "bench/alloc_hook.h"

#include "bench/bench_common.h"
#include "bench/bench_gbench_json.h"

#include "src/common/arena.h"
#include "src/common/serde.h"
#include "src/core/commit_tracker.h"
#include "src/core/marker.h"
#include "src/core/operator.h"
#include "src/core/record.h"
#include "src/core/state_store.h"
#include "src/core/window.h"
#include "src/nexmark/generator.h"
#include "src/nexmark/udfs.h"
#include "src/obs/alloc_stats.h"

namespace impeller {
namespace {

ProgressMarker SampleMarker(int inputs) {
  ProgressMarker m;
  m.marker_seq = 123456;
  for (int i = 0; i < inputs; ++i) {
    m.input_ends.emplace_back("d/stream/" + std::to_string(i),
                              1000000 + i * 17);
  }
  m.outputs_from = 999900;
  m.changelog_from = 999950;
  return m;
}

// The naive marker layout the paper's §3.5 optimization removes: two LSNs
// per input range and explicit output/change-log range ends.
std::string EncodeFullMarker(const ProgressMarker& m) {
  BinaryWriter w(128);
  w.WriteVarU64(m.marker_seq);
  w.WriteVarU64(m.input_ends.size());
  for (const auto& [tag, lsn] : m.input_ends) {
    w.WriteString(tag);
    w.WriteVarU64(lsn > 1000 ? lsn - 1000 : 0);  // range start
    w.WriteVarU64(lsn);                          // range end
  }
  w.WriteVarU64(m.outputs_from);
  w.WriteVarU64(m.outputs_from + 500);    // explicit output range end
  w.WriteVarU64(m.changelog_from);
  w.WriteVarU64(m.changelog_from + 200);  // explicit change-log range end
  w.WriteBool(false);
  return w.Take();
}

void BM_MarkerEncodeCompact(benchmark::State& state) {
  ProgressMarker m = SampleMarker(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string enc = EncodeProgressMarker(m);
    bytes = enc.size();
    benchmark::DoNotOptimize(enc);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_MarkerEncodeCompact)->Arg(1)->Arg(2)->Arg(4);

void BM_MarkerEncodeFullAblation(benchmark::State& state) {
  ProgressMarker m = SampleMarker(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string enc = EncodeFullMarker(m);
    bytes = enc.size();
    benchmark::DoNotOptimize(enc);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_MarkerEncodeFullAblation)->Arg(1)->Arg(2)->Arg(4);

void BM_MarkerDecode(benchmark::State& state) {
  std::string enc = EncodeProgressMarker(SampleMarker(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeProgressMarker(enc));
  }
}
BENCHMARK(BM_MarkerDecode);

void BM_EnvelopeRoundTrip(benchmark::State& state) {
  RecordHeader h;
  h.type = RecordType::kData;
  h.producer = "q5/win/1";
  h.instance = 3;
  h.seq = 123456;
  DataBody body;
  body.key = "auction-1234";
  body.value = std::string(static_cast<size_t>(state.range(0)), 'v');
  body.event_time = 1234567890;
  for (auto _ : state) {
    std::string enc = EncodeEnvelope(h, EncodeDataBody(body));
    auto env = DecodeEnvelope(enc);
    benchmark::DoNotOptimize(DecodeDataBody(env->body));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EnvelopeRoundTrip)->Arg(100)->Arg(500);

// --- record-path allocation ablation (DESIGN.md §12) ---
//
// Both benchmarks run the same logical per-record pipeline — decode a log
// payload, materialize a StreamRecord, re-encode it for append — and report
// allocs_per_record / bytes_copied_per_record from the thread-local
// obs::AllocStats tallies (heap side fed by bench/alloc_hook.h). "Owning"
// reproduces the pre-refactor path: every decode copies into fresh
// std::strings and every record is framed into its own payload string.
// "ZeroCopy" is the shipped path: view decode in place, StringPool
// materialization, append-mode serialization into one reused flush buffer.

std::string SampleDataPayload(size_t value_size) {
  RecordHeader h;
  h.type = RecordType::kData;
  h.producer = "q1/map/0";
  h.instance = 2;
  h.seq = 987654;
  DataBody body;
  body.key = "auction-1234";
  body.value = std::string(value_size, 'v');
  body.event_time = 1234567890;
  return EncodeEnvelope(h, EncodeDataBody(body));
}

void SetAllocCounters(benchmark::State& state, const obs::AllocStats& d,
                      uint64_t records) {
  if (records == 0) return;
  state.counters["allocs_per_record"] =
      static_cast<double>(d.allocs) / static_cast<double>(records);
  state.counters["bytes_copied_per_record"] =
      static_cast<double>(d.bytes_copied) / static_cast<double>(records);
}

void BM_RecordPathOwning(benchmark::State& state) {
  const std::string payload = SampleDataPayload(static_cast<size_t>(state.range(0)));
  const std::string tag = "d/q1/0";
  std::vector<std::pair<std::string, std::string>> batch;
  obs::AllocStats start;
  uint64_t warm = 0, measured = 0;
  for (auto _ : state) {
    if (warm++ == 64) {
      start = obs::AllocStatsNow();
      measured = 0;
    }
    auto env = DecodeEnvelope(payload);
    auto data = DecodeDataBody(env->body);
    StreamRecord rec{std::move(data->key), std::move(data->value),
                     data->event_time};
    DataBody out;
    out.key = rec.key;
    out.value = rec.value;
    out.event_time = rec.event_time;
    RecordHeader h;
    h.type = RecordType::kData;
    h.producer = "q1/map/0";
    h.instance = 2;
    h.seq = env->header.seq + 1;
    std::string enc = EncodeEnvelope(h, EncodeDataBody(out));
    obs::RecordBytesCopied(env->header.producer.size() + env->body.size() +
                           rec.key.size() + rec.value.size() + enc.size());
    batch.emplace_back(tag, std::move(enc));
    if (batch.size() >= 64) batch.clear();
    ++measured;
  }
  SetAllocCounters(state, [&] {
    obs::AllocStats now = obs::AllocStatsNow();
    obs::AllocStats d;
    d.allocs = now.allocs - start.allocs;
    d.alloc_bytes = now.alloc_bytes - start.alloc_bytes;
    d.bytes_copied = now.bytes_copied - start.bytes_copied;
    return d;
  }(), measured);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RecordPathOwning)->Arg(100)->Arg(500);

void BM_RecordPathZeroCopy(benchmark::State& state) {
  const std::string payload = SampleDataPayload(static_cast<size_t>(state.range(0)));
  const std::string tag = "d/q1/0";
  StringPool pool;
  std::string flush_buffer;
  std::vector<std::string> tags;
  size_t records_in_buffer = 0;
  obs::AllocStats start;
  uint64_t warm = 0, measured = 0;
  for (auto _ : state) {
    if (warm++ == 64) {
      start = obs::AllocStatsNow();
      measured = 0;
    }
    auto env = DecodeEnvelopeView(payload);
    auto data = DecodeDataView(env->body);
    StreamRecord rec;
    rec.key = pool.Acquire();
    rec.key.assign(data->key.data(), data->key.size());
    rec.value = pool.Acquire();
    rec.value.assign(data->value.data(), data->value.size());
    rec.event_time = data->event_time;
    obs::RecordBytesCopied(rec.key.size() + rec.value.size());
    size_t before = flush_buffer.size();
    BinaryWriter w(&flush_buffer);
    AppendEnvelopeHeader(w, RecordType::kData, "q1/map/0", 2, env->seq + 1);
    AppendDataBody(w, rec.key, rec.value, rec.event_time);
    obs::RecordBytesCopied(flush_buffer.size() - before);
    tags.push_back(tag);
    pool.Release(std::move(rec.key));
    pool.Release(std::move(rec.value));
    if (++records_in_buffer >= 64) {
      // Flush: the real OutputBuffer moves the buffer into a shared
      // immutable string; capacity reuse via clear() models the next
      // epoch's warm buffer.
      flush_buffer.clear();
      tags.clear();
      records_in_buffer = 0;
    }
    ++measured;
  }
  SetAllocCounters(state, [&] {
    obs::AllocStats now = obs::AllocStatsNow();
    obs::AllocStats d;
    d.allocs = now.allocs - start.allocs;
    d.alloc_bytes = now.alloc_bytes - start.alloc_bytes;
    d.bytes_copied = now.bytes_copied - start.bytes_copied;
    return d;
  }(), measured);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_RecordPathZeroCopy)->Arg(100)->Arg(500);

// Q1's stateless operator chain (currency-conversion map) must run
// allocation-free once its scratch capacity is warm: view decode of the
// bid, thread-local re-encode scratch, capacity-reusing value assign.
void BM_NexmarkQ1ChainSteadyState(benchmark::State& state) {
  NexmarkGenerator generator({}, 5, MonotonicClock::Get());
  std::string bid_raw;
  while (bid_raw.empty()) {
    auto event = generator.Next();
    if (event.kind == NexmarkGenerator::Kind::kBid) {
      bid_raw = EncodeBid(event.bid);
    }
  }
  StreamRecord rec;
  obs::AllocStats start;
  uint64_t warm = 0, measured = 0;
  for (auto _ : state) {
    if (warm++ == 64) {
      start = obs::AllocStatsNow();
      measured = 0;
    }
    rec.key.assign("1007");
    rec.value.assign(bid_raw);
    rec.event_time = 1234567890;
    if (nexmark::NonEmptyValue(rec)) {
      rec = nexmark::ConvertUsdToEur(std::move(rec));
    }
    benchmark::DoNotOptimize(rec);
    ++measured;
  }
  obs::AllocStats now = obs::AllocStatsNow();
  state.counters["allocs_per_record"] =
      measured ? static_cast<double>(now.allocs - start.allocs) /
                     static_cast<double>(measured)
               : 0;
}
BENCHMARK(BM_NexmarkQ1ChainSteadyState);

void BM_StateStorePut(benchmark::State& state) {
  uint64_t captured = 0;
  MapStateStore store("s", [&](const ChangeLogView&) { ++captured; });
  uint64_t i = 0;
  for (auto _ : state) {
    store.Put("key" + std::to_string(i++ % 10000), "value");
  }
  benchmark::DoNotOptimize(captured);
}
BENCHMARK(BM_StateStorePut);

void BM_StateStoreSnapshot(benchmark::State& state) {
  MapStateStore store("s", nullptr);
  for (int i = 0; i < state.range(0); ++i) {
    store.Put("key" + std::to_string(i), std::string(64, 'v'));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.SerializeSnapshot());
  }
  state.counters["entries"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_StateStoreSnapshot)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_CommitTrackerClassify(benchmark::State& state) {
  CommitTracker tracker(true);
  for (int p = 0; p < 8; ++p) {
    tracker.OnCommitEvent("producer" + std::to_string(p), 1, 100000);
  }
  RecordHeader h;
  h.producer = "producer3";
  h.instance = 1;
  Lsn lsn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.Classify(h, lsn++ % 200000));
  }
}
BENCHMARK(BM_CommitTrackerClassify);

void BM_WindowAssignSliding(benchmark::State& state) {
  WindowSpec w = WindowSpec::Sliding(10 * kSecond, 2 * kSecond);
  std::vector<TimeNs> starts;
  TimeNs t = 0;
  for (auto _ : state) {
    w.AssignWindows(t += 1234567, &starts);
    benchmark::DoNotOptimize(starts);
  }
}
BENCHMARK(BM_WindowAssignSliding);

void BM_NexmarkGenerate(benchmark::State& state) {
  NexmarkGenerator generator({}, 5, MonotonicClock::Get());
  for (auto _ : state) {
    auto event = generator.Next();
    switch (event.kind) {
      case NexmarkGenerator::Kind::kBid:
        benchmark::DoNotOptimize(EncodeBid(event.bid));
        break;
      case NexmarkGenerator::Kind::kAuction:
        benchmark::DoNotOptimize(EncodeAuction(event.auction));
        break;
      case NexmarkGenerator::Kind::kPerson:
        benchmark::DoNotOptimize(EncodePerson(event.person));
        break;
    }
  }
}
BENCHMARK(BM_NexmarkGenerate);

}  // namespace
}  // namespace impeller

// Strip the shared --seed flag before google-benchmark sees argv: it
// rejects flags it does not know.
int main(int argc, char** argv) {
  impeller::bench::InitBench(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  impeller::bench::JsonForwardingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
