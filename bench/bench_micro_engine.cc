// Microbenchmarks for the engine's hot paths: record/marker codecs — with
// the §3.5 compact-vs-full marker ablation — state-store operations,
// commit-tracker classification, window assignment, and the NEXMark
// generator.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "bench/bench_gbench_json.h"

#include "src/common/serde.h"
#include "src/core/commit_tracker.h"
#include "src/core/marker.h"
#include "src/core/record.h"
#include "src/core/state_store.h"
#include "src/core/window.h"
#include "src/nexmark/generator.h"

namespace impeller {
namespace {

ProgressMarker SampleMarker(int inputs) {
  ProgressMarker m;
  m.marker_seq = 123456;
  for (int i = 0; i < inputs; ++i) {
    m.input_ends.emplace_back("d/stream/" + std::to_string(i),
                              1000000 + i * 17);
  }
  m.outputs_from = 999900;
  m.changelog_from = 999950;
  return m;
}

// The naive marker layout the paper's §3.5 optimization removes: two LSNs
// per input range and explicit output/change-log range ends.
std::string EncodeFullMarker(const ProgressMarker& m) {
  BinaryWriter w(128);
  w.WriteVarU64(m.marker_seq);
  w.WriteVarU64(m.input_ends.size());
  for (const auto& [tag, lsn] : m.input_ends) {
    w.WriteString(tag);
    w.WriteVarU64(lsn > 1000 ? lsn - 1000 : 0);  // range start
    w.WriteVarU64(lsn);                          // range end
  }
  w.WriteVarU64(m.outputs_from);
  w.WriteVarU64(m.outputs_from + 500);    // explicit output range end
  w.WriteVarU64(m.changelog_from);
  w.WriteVarU64(m.changelog_from + 200);  // explicit change-log range end
  w.WriteBool(false);
  return w.Take();
}

void BM_MarkerEncodeCompact(benchmark::State& state) {
  ProgressMarker m = SampleMarker(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string enc = EncodeProgressMarker(m);
    bytes = enc.size();
    benchmark::DoNotOptimize(enc);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_MarkerEncodeCompact)->Arg(1)->Arg(2)->Arg(4);

void BM_MarkerEncodeFullAblation(benchmark::State& state) {
  ProgressMarker m = SampleMarker(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string enc = EncodeFullMarker(m);
    bytes = enc.size();
    benchmark::DoNotOptimize(enc);
  }
  state.counters["bytes"] = static_cast<double>(bytes);
}
BENCHMARK(BM_MarkerEncodeFullAblation)->Arg(1)->Arg(2)->Arg(4);

void BM_MarkerDecode(benchmark::State& state) {
  std::string enc = EncodeProgressMarker(SampleMarker(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeProgressMarker(enc));
  }
}
BENCHMARK(BM_MarkerDecode);

void BM_EnvelopeRoundTrip(benchmark::State& state) {
  RecordHeader h;
  h.type = RecordType::kData;
  h.producer = "q5/win/1";
  h.instance = 3;
  h.seq = 123456;
  DataBody body;
  body.key = "auction-1234";
  body.value = std::string(static_cast<size_t>(state.range(0)), 'v');
  body.event_time = 1234567890;
  for (auto _ : state) {
    std::string enc = EncodeEnvelope(h, EncodeDataBody(body));
    auto env = DecodeEnvelope(enc);
    benchmark::DoNotOptimize(DecodeDataBody(env->body));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_EnvelopeRoundTrip)->Arg(100)->Arg(500);

void BM_StateStorePut(benchmark::State& state) {
  uint64_t captured = 0;
  MapStateStore store("s", [&](const ChangeLogBody&) { ++captured; });
  uint64_t i = 0;
  for (auto _ : state) {
    store.Put("key" + std::to_string(i++ % 10000), "value");
  }
  benchmark::DoNotOptimize(captured);
}
BENCHMARK(BM_StateStorePut);

void BM_StateStoreSnapshot(benchmark::State& state) {
  MapStateStore store("s", nullptr);
  for (int i = 0; i < state.range(0); ++i) {
    store.Put("key" + std::to_string(i), std::string(64, 'v'));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.SerializeSnapshot());
  }
  state.counters["entries"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_StateStoreSnapshot)->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMicrosecond);

void BM_CommitTrackerClassify(benchmark::State& state) {
  CommitTracker tracker(true);
  for (int p = 0; p < 8; ++p) {
    tracker.OnCommitEvent("producer" + std::to_string(p), 1, 100000);
  }
  RecordHeader h;
  h.producer = "producer3";
  h.instance = 1;
  Lsn lsn = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.Classify(h, lsn++ % 200000));
  }
}
BENCHMARK(BM_CommitTrackerClassify);

void BM_WindowAssignSliding(benchmark::State& state) {
  WindowSpec w = WindowSpec::Sliding(10 * kSecond, 2 * kSecond);
  std::vector<TimeNs> starts;
  TimeNs t = 0;
  for (auto _ : state) {
    w.AssignWindows(t += 1234567, &starts);
    benchmark::DoNotOptimize(starts);
  }
}
BENCHMARK(BM_WindowAssignSliding);

void BM_NexmarkGenerate(benchmark::State& state) {
  NexmarkGenerator generator({}, 5, MonotonicClock::Get());
  for (auto _ : state) {
    auto event = generator.Next();
    switch (event.kind) {
      case NexmarkGenerator::Kind::kBid:
        benchmark::DoNotOptimize(EncodeBid(event.bid));
        break;
      case NexmarkGenerator::Kind::kAuction:
        benchmark::DoNotOptimize(EncodeAuction(event.auction));
        break;
      case NexmarkGenerator::Kind::kPerson:
        benchmark::DoNotOptimize(EncodePerson(event.person));
        break;
    }
  }
}
BENCHMARK(BM_NexmarkGenerate);

}  // namespace
}  // namespace impeller

// Strip the shared --seed flag before google-benchmark sees argv: it
// rejects flags it does not know.
int main(int argc, char** argv) {
  impeller::bench::InitBench(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  impeller::bench::JsonForwardingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
