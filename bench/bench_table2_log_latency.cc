// Reproduces Table 2: p50/p99 latency between appending a 16 KiB record and
// consuming it from another node, for Impeller's log (Boki model) vs Kafka,
// at 10 / 50 / 100 appends per second, batching disabled.
//
// Paper values (us):            Impeller's log      Kafka
//   10 aps                      p50 2714 p99 3711   p50 2074 p99 4448
//   50 aps                      p50 2604 p99 3832   p50 1596 p99 3463
//   100 aps                     p50 2546 p99 3596   p50 1449 p99 2942
#include <cstdio>
#include <string>
#include <utility>

#include "bench/bench_common.h"
#include "src/common/histogram.h"
#include "src/common/rate_limiter.h"
#include "src/common/threading.h"
#include "src/sharedlog/partitioned_log.h"
#include "src/sharedlog/shared_log.h"

namespace impeller {
namespace bench {
namespace {

constexpr size_t kRecordBytes = 16 * 1024;

struct Sample {
  int64_t p50;
  int64_t p99;
};

Sample MeasureSharedLog(double aps, double seconds) {
  SharedLogOptions options;
  options.latency = std::make_shared<CalibratedLatencyModel>(
      CalibratedLatencyModel::BokiParams(), 11);
  SharedLog log(std::move(options));
  LatencyHistogram hist;
  Clock* clock = MonotonicClock::Get();

  std::atomic<bool> done{false};
  JoiningThread reader([&] {
    Lsn cursor = 0;
    while (!done.load(std::memory_order_relaxed)) {
      auto entry = log.AwaitNext("t", cursor, 50 * kMillisecond);
      if (!entry.ok()) {
        continue;
      }
      cursor = entry->lsn + 1;
      hist.Record(clock->Now() - entry->append_time);
    }
  });

  RateLimiter limiter(aps, clock, /*max_burst=*/1);
  TimeNs deadline = clock->Now() + static_cast<DurationNs>(seconds * kSecond);
  std::string payload(kRecordBytes, 'x');
  while (clock->Now() < deadline) {
    limiter.Acquire(1);
    AppendRequest req;
    req.tags = {"t"};
    req.payload = payload;
    (void)log.Append(std::move(req));
  }
  clock->SleepFor(20 * kMillisecond);
  done.store(true);
  reader.Join();
  return {hist.p50(), hist.p99()};
}

Sample MeasureKafka(double aps, double seconds) {
  PartitionedLogOptions options;
  options.latency = std::make_shared<CalibratedLatencyModel>(
      CalibratedLatencyModel::KafkaParams(), 13);
  PartitionedLog log(std::move(options));
  (void)log.CreateTopic("t", 1);  // single partition, as in the paper
  LatencyHistogram hist;
  Clock* clock = MonotonicClock::Get();

  std::atomic<bool> done{false};
  JoiningThread reader([&] {
    Offset cursor = 0;
    while (!done.load(std::memory_order_relaxed)) {
      auto rec = log.AwaitRead("t", 0, cursor, 50 * kMillisecond);
      if (!rec.ok()) {
        continue;
      }
      cursor = rec->offset + 1;
      hist.Record(clock->Now() - rec->append_time);
    }
  });

  RateLimiter limiter(aps, clock, /*max_burst=*/1);
  TimeNs deadline = clock->Now() + static_cast<DurationNs>(seconds * kSecond);
  std::string payload(kRecordBytes, 'x');
  while (clock->Now() < deadline) {
    limiter.Acquire(1);
    (void)log.Append("t", 0, "k", payload);
  }
  clock->SleepFor(20 * kMillisecond);
  done.store(true);
  reader.Join();
  return {hist.p50(), hist.p99()};
}

int Main() {
  std::printf(
      "Table 2: produce-to-consume latency, 16 KiB record (us)\n"
      "%-8s | %-12s %-12s | %-12s %-12s | %s\n",
      "rate", "log p50", "log p99", "kafka p50", "kafka p99", "p50 ratio");
  std::printf("%s\n", std::string(76, '-').c_str());
  double base = FastMode() ? 6.0 : 12.0;
  struct Row {
    double aps;
    double seconds;
  };
  // Longer runs at low rates so the p99 rests on enough samples — on a
  // single shared host one scheduler hiccup can otherwise poison the tail.
  Row rows[] = {{10, base * 5}, {50, base * 2}, {100, base}};
  for (const Row& row : rows) {
    Sample boki = MeasureSharedLog(row.aps, row.seconds);
    Sample kafka = MeasureKafka(row.aps, row.seconds);
    std::printf("%-8.0f | %-12ld %-12ld | %-12ld %-12ld | (%.2fx)\n",
                row.aps, boki.p50 / 1000, boki.p99 / 1000, kafka.p50 / 1000,
                kafka.p99 / 1000,
                kafka.p50 > 0
                    ? static_cast<double>(boki.p50) / kafka.p50
                    : 0.0);
    for (const auto& [series, sample] :
         {std::pair<const char*, Sample>{"log", boki}, {"kafka", kafka}}) {
      BenchPoint point;
      point.name = std::string(series) + "/" + std::to_string(
                       static_cast<int>(row.aps)) + "aps";
      point.ns_per_op = static_cast<double>(sample.p50);
      point.ops_per_sec = row.aps;
      point.p50_ns = sample.p50;
      point.p99_ns = sample.p99;
      BenchJson::Instance().Add(point);
    }
  }
  std::printf(
      "\nPaper: log p50 2546-2714us p99 3596-3832us; kafka p50 1449-2074us\n"
      "p99 2942-4448us (higher than the log's at 10 aps). Slowdown of the\n"
      "shared log vs kafka: 1.30-1.76x at p50.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace impeller

int main(int argc, char** argv) {
  impeller::bench::InitBench(&argc, argv);
  return impeller::bench::Main();
}
