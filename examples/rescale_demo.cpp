// Rescale demo (paper §5.3 skew tolerance, DESIGN.md §13): a *stateful*
// counting stage is over-partitioned — 8 substreams multiplexed onto 1 task
// — and scaled to 4 tasks while data flows. The old generation's final
// progress marker hands over both the consumed positions and the keyed
// state: the new tasks replay their substream ranges from the changelog, so
// every per-user running count survives the move and the output stays
// exactly-once across the reconfiguration.
//
// Run with --autoscale to let the engine do it on its own: the metrics
// controller watches input lag and commit overruns, and a sustained flood
// makes it widen the stage without any operator involvement.
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>
#include <string>

#include "src/core/engine.h"

using namespace impeller;

namespace {

Result<QueryPlan> ClickPlan() {
  AggregateFn count;
  count.init = [] { return std::string("0"); };
  count.add = [](std::string_view acc, const StreamRecord&) {
    return std::to_string(std::stoll(std::string(acc)) + 1);
  };
  QueryBuilder qb("clicks");
  qb.Ingress("events");
  qb.AddStage("parse", 2)
      .ReadsFrom({"events"})
      .FlatMap([](StreamRecord r, std::vector<StreamRecord>* out) {
        std::istringstream s(r.value);
        std::string token;
        while (s >> token) {
          // Keep the user as the key: the downstream count is keyed state
          // that must migrate when the stage rescales.
          out->push_back({std::string(r.key), token, r.event_time});
        }
      })
      .WritesTo("actions");
  qb.AddStage("count", /*num_tasks=*/1)
      .WithSubstreams(8)  // headroom: can rescale up to 8 tasks later
      .ReadsFrom({"actions"})
      .Aggregate("c", count)
      .Sink("clicks");
  return qb.Build();
}

constexpr int kUsers = 20;

uint32_t CountTasks(Engine& engine) {
  for (const auto& s : engine.tasks()->CollectStageStats()) {
    if (s.stage == "count") {
      return s.current_tasks;
    }
  }
  return 0;
}

// Drains committed egress and returns each user's final running count (the
// maximum update ever committed for the key).
std::map<std::string, long> FinalCounts(Engine& engine) {
  std::map<std::string, long> counts;
  for (uint32_t sub = 0; sub < 8; ++sub) {
    auto consumer = engine.NewEgressConsumer("count", sub);
    if (!consumer.ok()) {
      continue;
    }
    auto records = (*consumer)->PollAll();
    if (!records.ok()) {
      continue;
    }
    for (const auto& r : *records) {
      std::string key(r.data.key);
      counts[key] =
          std::max(counts[key], std::stol(std::string(r.data.value)));
    }
  }
  return counts;
}

int RunManual(Engine& engine, IngressProducer& producer) {
  Counter* out = engine.metrics()->GetCounter("out/clicks");
  Clock* clock = engine.clock();
  auto pump = [&](int batches) {
    for (int b = 0; b < batches; ++b) {
      for (int i = 0; i < kUsers; ++i) {
        producer.Send("user" + std::to_string(i), "page click");
      }
      (void)producer.Flush();
      clock->SleepFor(20 * kMillisecond);
    }
  };

  std::printf("phase 1: one count task over 8 substreams\n");
  pump(10);
  std::printf("  %llu count updates committed so far\n",
              static_cast<unsigned long long>(out->Get()));

  std::printf("phase 2: load spike! rescaling count 1 -> 4 tasks\n");
  std::printf("  (each user's running total migrates via the changelog)\n");
  if (Status st = engine.tasks()->RescaleStage("count", 4); !st.ok()) {
    std::fprintf(stderr, "rescale failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("  count tasks now running: %u\n", CountTasks(engine));

  pump(10);
  // 20 users x 20 batches x 2 tokens = 800 updates in total.
  TimeNs deadline = clock->Now() + 10 * kSecond;
  while (out->Get() < kUsers * 20 * 2 && clock->Now() < deadline) {
    clock->SleepFor(5 * kMillisecond);
  }
  engine.Stop();

  // Every user clicked 40 times; a count that reset at the rescale would
  // show 20, a double-counted one 60.
  auto counts = FinalCounts(engine);
  bool exact = true;
  for (int i = 0; i < kUsers; ++i) {
    if (counts["user" + std::to_string(i)] != 40) {
      exact = false;
    }
  }
  std::printf("final per-user counts: user0=%ld ... user%d=%ld -> %s\n",
              counts["user0"], kUsers - 1,
              counts["user" + std::to_string(kUsers - 1)],
              exact ? "exactly-once across rescale: PASS" : "FAIL");
  return exact ? 0 : 1;
}

int RunAutoscale(Engine& engine, IngressProducer& producer) {
  Clock* clock = engine.clock();
  std::printf("phase 1: trickle — the controller stays quiet\n");
  uint64_t sent = 0;
  for (int b = 0; b < 10; ++b) {
    for (int i = 0; i < kUsers; ++i) {
      producer.Send("user" + std::to_string(i), "page click");
      ++sent;
    }
    (void)producer.Flush();
    clock->SleepFor(20 * kMillisecond);
  }

  if (engine.autoscaler()->decisions_up() > 0) {
    std::printf("  (controller already reacted during the trickle — a\n"
                "   transient commit stall counts as pressure too)\n");
  }
  std::printf("phase 2: flood — waiting for the controller to react\n");
  TimeNs ramp = clock->Now();
  TimeNs deadline = ramp + 30 * kSecond;
  while (engine.autoscaler()->decisions_up() == 0 &&
         clock->Now() < deadline) {
    for (int i = 0; i < 500; ++i) {
      producer.Send("user" + std::to_string(sent % kUsers), "page click");
      ++sent;
    }
    (void)producer.Flush();
    clock->SleepFor(5 * kMillisecond);
  }
  if (engine.autoscaler()->decisions_up() == 0) {
    std::fprintf(stderr, "controller never reacted to the flood\n");
    return 1;
  }
  std::printf("  scale-up decided %.0f ms after the flood began\n",
              (clock->Now() - ramp) / 1e6);
  std::printf("  count tasks now running: %u\n", CountTasks(engine));

  // Drain: every parsed token must land in exactly one user's count. The
  // flood left a real backlog, so wait on progress, not a fixed deadline.
  Counter* out = engine.metrics()->GetCounter("out/clicks");
  uint64_t expected = sent * 2;
  uint64_t last = 0;
  TimeNs stalled_until = clock->Now() + 15 * kSecond;
  while (out->Get() < expected) {
    uint64_t cur = out->Get();
    if (cur > last) {
      last = cur;
      stalled_until = clock->Now() + 15 * kSecond;
    } else if (clock->Now() >= stalled_until) {
      break;  // no forward progress: let the verdict below say so
    }
    clock->SleepFor(20 * kMillisecond);
  }
  engine.Stop();

  uint64_t total = 0;
  for (const auto& [user, n] : FinalCounts(engine)) {
    total += static_cast<uint64_t>(n);
  }
  bool exact = total == expected;
  std::printf("final: %llu clicks sent, %llu counted -> %s\n",
              static_cast<unsigned long long>(expected),
              static_cast<unsigned long long>(total),
              exact ? "exactly-once across autoscale: PASS" : "FAIL");
  return exact ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool autoscale = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--autoscale") == 0) {
      autoscale = true;
    }
  }
  EngineOptions options;
  options.config.commit_interval = 50 * kMillisecond;
  if (autoscale) {
    options.config.autoscale.enabled = true;
    // Deliberately patient: commit overruns count as up-pressure on every
    // tick, so a hair-trigger config can scale on a transient stall during
    // the trickle. Six consecutive 50 ms ticks demand a sustained backlog.
    options.config.autoscale.tick_interval = 50 * kMillisecond;
    options.config.autoscale.up_threshold = 500;
    options.config.autoscale.up_ticks = 6;
    options.config.autoscale.cooldown = 500 * kMillisecond;
    options.config.autoscale.down_ticks = 100000;  // demo: no scale-down
  }
  Engine engine(std::move(options));
  auto plan = ClickPlan();
  if (!plan.ok() || !engine.Submit(std::move(*plan)).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  auto producer = engine.NewProducer("gen", "events");
  if (!producer.ok()) {
    std::fprintf(stderr, "producer failed\n");
    return 1;
  }
  return autoscale ? RunAutoscale(engine, **producer)
                   : RunManual(engine, **producer);
}
