// Rescale demo (paper §5.3 skew tolerance): a parsing stage is
// over-partitioned — 8 substreams multiplexed onto 1 task — and scaled to 4
// tasks while data flows. The old generation's final progress markers hand
// each substream's position to the new generation, so the output stays
// exactly-once across the reconfiguration.
#include <cstdio>
#include <sstream>

#include "src/core/engine.h"

using namespace impeller;

int main() {
  EngineOptions options;
  options.config.commit_interval = 50 * kMillisecond;
  Engine engine(std::move(options));

  AggregateFn count;
  count.init = [] { return std::string("0"); };
  count.add = [](std::string_view acc, const StreamRecord&) {
    return std::to_string(std::stoll(std::string(acc)) + 1);
  };
  QueryBuilder qb("clicks");
  qb.Ingress("events");
  qb.AddStage("parse", /*num_tasks=*/1)
      .WithSubstreams(8)  // headroom: can rescale up to 8 tasks later
      .ReadsFrom({"events"})
      .FlatMap([](StreamRecord r, std::vector<StreamRecord>* out) {
        std::istringstream s(r.value);
        std::string token;
        while (s >> token) {
          out->push_back({token, "1", r.event_time});
        }
      })
      .WritesTo("tokens");
  qb.AddStage("count", 2)
      .ReadsFrom({"tokens"})
      .Aggregate("c", count)
      .Sink("clicks");
  auto plan = qb.Build();
  if (!plan.ok() || !engine.Submit(std::move(*plan)).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  auto producer = engine.NewProducer("gen", "events");
  Counter* out = engine.metrics()->GetCounter("out/clicks");
  Clock* clock = engine.clock();

  auto pump = [&](int batches) {
    for (int b = 0; b < batches; ++b) {
      for (int i = 0; i < 20; ++i) {
        (*producer)->Send("user" + std::to_string(i), "page click");
      }
      (void)(*producer)->Flush();
      clock->SleepFor(20 * kMillisecond);
    }
  };

  std::printf("phase 1: one parse task over 8 substreams\n");
  pump(10);
  uint64_t before = out->Get();
  std::printf("  %lu outputs so far\n", static_cast<unsigned long>(before));

  std::printf("phase 2: load spike! rescaling parse 1 -> 4 tasks\n");
  Status st = engine.tasks()->RescaleStage("parse", 4);
  if (!st.ok()) {
    std::fprintf(stderr, "rescale failed: %s\n", st.ToString().c_str());
    return 1;
  }
  int parse_tasks = 0;
  for (const auto& id : engine.tasks()->AllTaskIds()) {
    TaskRuntime* rt = engine.tasks()->FindTask(id);
    if (id.find("parse") != std::string::npos && rt != nullptr &&
        !rt->finished()) {
      parse_tasks++;
    }
  }
  std::printf("  parse tasks now running: %d\n", parse_tasks);

  pump(10);
  TimeNs deadline = clock->Now() + 10 * kSecond;
  while (out->Get() < 800 && clock->Now() < deadline) {
    clock->SleepFor(5 * kMillisecond);
  }
  engine.Stop();

  // 20 users x 20 batches x 2 tokens = 800 updates; per-key totals must be
  // exactly 40 "page" + 40 "click" per user... aggregated by token:
  std::map<std::string, long> counts;
  for (uint32_t sub = 0; sub < 2; ++sub) {
    auto consumer = engine.NewEgressConsumer("count", sub);
    auto records = (*consumer)->PollAll();
    for (const auto& r : *records) {
      std::string key(r.data.key);
      counts[key] = std::max(counts[key],
                             std::stol(std::string(r.data.value)));
    }
  }
  bool exact = counts["page"] == 400 && counts["click"] == 400;
  std::printf("final counts: page=%ld click=%ld -> %s\n", counts["page"],
              counts["click"],
              exact ? "exactly-once across rescale: PASS" : "FAIL");
  return exact ? 0 : 1;
}
