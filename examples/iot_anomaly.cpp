// IoT anomaly detection: the kind of workload the paper's introduction
// motivates (IoT devices streaming through the gateway, Fig. 2). Sensor
// readings flow through a two-stage query:
//
//   readings ──> [1s tumbling average per device] ──> device-averages
//   thresholds ──────────────────────────────────────────┐
//   device-averages ──> [join vs threshold table, filter breaches] ──> sink
//
// Exercises windows, aggregation, and a stream-table join with exactly-once
// semantics.
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/serde.h"
#include "src/core/engine.h"

using namespace impeller;

namespace {

std::string EncodeValue(double value) {
  BinaryWriter w;
  w.WriteDouble(value);
  return w.Take();
}

double DecodeValue(std::string_view raw, double fallback = 0) {
  BinaryReader r(raw);
  auto v = r.ReadDouble();
  return v.ok() ? *v : fallback;
}

}  // namespace

int main() {
  EngineOptions options;
  options.config.commit_interval = 50 * kMillisecond;
  Engine engine(std::move(options));

  // Windowed mean: accumulator = (sum, count) packed as two doubles.
  AggregateFn mean;
  mean.init = [] {
    BinaryWriter w;
    w.WriteDouble(0);
    w.WriteDouble(0);
    return w.Take();
  };
  mean.add = [](std::string_view acc, const StreamRecord& r) {
    BinaryReader reader(acc);
    double sum = *reader.ReadDouble();
    double count = *reader.ReadDouble();
    BinaryWriter w;
    w.WriteDouble(sum + DecodeValue(r.value));
    w.WriteDouble(count + 1);
    return w.Take();
  };

  QueryBuilder qb("iot");
  qb.Ingress("readings");
  qb.Ingress("thresholds");
  qb.AddStage("avg", 2)
      .ReadsFrom({"readings"})
      .WindowAggregate("avgs", WindowSpec::Tumbling(kSecond), mean,
                       /*allowed_lateness=*/50 * kMillisecond)
      .Map([](StreamRecord r) {
        // Window output: varint(start) + (sum,count) blob -> mean value.
        BinaryReader reader(r.value);
        auto start = reader.ReadVarI64();
        auto acc = reader.ReadString();
        double avg = 0;
        if (start.ok() && acc.ok()) {
          BinaryReader a(*acc);
          double sum = *a.ReadDouble();
          double count = *a.ReadDouble();
          avg = count > 0 ? sum / count : 0;
        }
        r.value = EncodeValue(avg);
        return r;
      })
      .WritesTo("device-averages");
  qb.AddStage("alert", 2)
      .ReadsFrom({"device-averages", "thresholds"})
      .JoinTable("limits",
                 [](std::string_view avg_raw, std::string_view limit_raw) {
                   BinaryWriter w;
                   w.WriteDouble(DecodeValue(avg_raw));
                   w.WriteDouble(DecodeValue(limit_raw));
                   return w.Take();
                 })
      .Filter([](const StreamRecord& r) {
        BinaryReader reader(r.value);
        double avg = *reader.ReadDouble();
        double limit = *reader.ReadDouble();
        return avg > limit;
      })
      .Sink("alerts");
  auto plan = qb.Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  if (Status st = engine.Submit(std::move(*plan)); !st.ok()) {
    std::fprintf(stderr, "submit: %s\n", st.ToString().c_str());
    return 1;
  }

  auto thresholds = engine.NewProducer("config", "thresholds");
  auto readings = engine.NewProducer("sensors", "readings");

  // Device limits: device-7 runs hot (low threshold), the rest are lax.
  for (int d = 0; d < 10; ++d) {
    double limit = d == 7 ? 60.0 : 90.0;
    (*thresholds)->Send("device-" + std::to_string(d), EncodeValue(limit));
  }
  (void)(*thresholds)->Flush();

  // Three seconds of readings: device-7 trends upward past its limit.
  Rng rng(99);
  Clock* clock = engine.clock();
  for (int tick = 0; tick < 30; ++tick) {
    for (int d = 0; d < 10; ++d) {
      double base = d == 7 ? 40.0 + tick * 2.0 : 50.0;
      (*readings)->Send("device-" + std::to_string(d),
                        EncodeValue(base + rng.NextGaussian() * 3.0));
    }
    (void)(*readings)->Flush();
    clock->SleepFor(100 * kMillisecond);
  }
  clock->SleepFor(1500 * kMillisecond);  // let the last window fire
  engine.Stop();

  std::printf("alerts (device average above threshold):\n");
  int alerts = 0;
  for (uint32_t sub = 0; sub < 2; ++sub) {
    auto consumer = engine.NewEgressConsumer("alert", sub);
    auto records = (*consumer)->PollAll();
    for (const auto& r : *records) {
      BinaryReader reader(r.data.value);
      double avg = *reader.ReadDouble();
      double limit = *reader.ReadDouble();
      std::printf("  %-10.*s avg=%.1f limit=%.1f\n",
                  static_cast<int>(r.data.key.size()), r.data.key.data(), avg,
                  limit);
      alerts++;
    }
  }
  std::printf("%d alerts; latency %s\n", alerts,
              engine.metrics()->Histogram("lat/alerts")->Summary().c_str());
  return alerts > 0 ? 0 : 1;
}
