// Quickstart: the paper's running example (Fig. 1/3) — distributed word
// count with exactly-once semantics on a shared log.
//
//   lines ──> [split: flat-map to words] ──repartition──> [count] ──> sink
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <sstream>

#include "src/core/engine.h"

using namespace impeller;

int main() {
  // 1. An engine owns the shared log, the checkpoint store, and the task
  //    manager for one stream query. Default: Impeller's progress-marking
  //    protocol, 100 ms commit interval.
  EngineOptions options;
  options.config.commit_interval = 50 * kMillisecond;
  Engine engine(std::move(options));

  // 2. Describe the query as a DAG of stages.
  AggregateFn count;
  count.init = [] { return std::string("0"); };
  count.add = [](std::string_view acc, const StreamRecord&) {
    return std::to_string(std::stoll(std::string(acc)) + 1);
  };

  QueryBuilder qb("wordcount");
  qb.Ingress("lines");
  qb.AddStage("split", /*num_tasks=*/2)
      .ReadsFrom({"lines"})
      .FlatMap([](StreamRecord line, std::vector<StreamRecord>* out) {
        std::istringstream stream(line.value);
        std::string word;
        while (stream >> word) {
          // The emitted key drives the repartition: all instances of a word
          // reach the same counting task.
          out->push_back({word, "1", line.event_time});
        }
      })
      .WritesTo("words");
  qb.AddStage("count", /*num_tasks=*/2)
      .ReadsFrom({"words"})
      .Aggregate("counts", count)
      .Sink("wordcount");

  auto plan = qb.Build();
  if (!plan.ok()) {
    std::fprintf(stderr, "plan error: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  if (Status st = engine.Submit(std::move(*plan)); !st.ok()) {
    std::fprintf(stderr, "submit error: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Feed the ingress stream (the gateway + data-ingress path of Fig. 2).
  auto producer = engine.NewProducer("example-gen", "lines");
  const char* lines[] = {
      "hello world",
      "hello shared log",
      "the log is the system",
      "exactly once means exactly once",
  };
  for (const char* line : lines) {
    (*producer)->Send("line", line);
  }
  (void)(*producer)->Flush();

  // 4. Wait for the pipeline to drain, then stop gracefully (final commit).
  Counter* outputs = engine.metrics()->GetCounter("out/wordcount");
  Clock* clock = engine.clock();
  TimeNs deadline = clock->Now() + 10 * kSecond;
  while (outputs->Get() < 15 && clock->Now() < deadline) {
    clock->SleepFor(5 * kMillisecond);
  }
  engine.Stop();

  // 5. Read the committed results from the egress stream.
  std::map<std::string, long> counts;
  for (uint32_t sub = 0; sub < 2; ++sub) {
    auto consumer = engine.NewEgressConsumer("count", sub);
    auto records = (*consumer)->PollAll();
    for (const auto& r : *records) {
      counts[r.data.key] = std::max(counts[r.data.key],
                                    std::stol(r.data.value));
    }
  }
  std::printf("word counts (exactly-once):\n");
  for (const auto& [word, n] : counts) {
    std::printf("  %-10s %ld\n", word.c_str(), n);
  }
  std::printf("end-to-end latency: %s\n",
              engine.metrics()->Histogram("lat/wordcount")->Summary().c_str());
  return 0;
}
