// Quickstart: the paper's running example (Fig. 1/3) — distributed word
// count with exactly-once semantics on a shared log, authored on the
// declarative plan layer (src/plan/). The plan builder names UDFs with
// registry handles, the optimizer fuses operator chains so only the
// repartition before the counting aggregate pays a log hop, and lowering
// emits the same QueryPlan the imperative QueryBuilder would.
//
//   lines ──> [split: flat-map to words] ──repartition──> [count] ──> sink
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart              # plan-built pipeline
//   ./build/examples/quickstart --explain    # print the optimized plan
//   ./build/examples/quickstart --no-plan    # original imperative build
#include <cstdio>
#include <cstring>
#include <map>
#include <sstream>

#include "src/core/engine.h"
#include "src/plan/explain.h"
#include "src/plan/ir.h"
#include "src/plan/lowering.h"
#include "src/plan/optimizer.h"
#include "src/plan/registry.h"

using namespace impeller;

namespace {

// The two UDFs, shared by the plan and imperative paths.
void SplitWords(StreamRecord line, std::vector<StreamRecord>* out) {
  std::istringstream stream(line.value);
  std::string word;
  while (stream >> word) {
    // The emitted key drives the repartition: all instances of a word
    // reach the same counting task.
    out->push_back({word, "1", line.event_time});
  }
}

AggregateFn CountAgg() {
  AggregateFn count;
  count.init = [] { return std::string("0"); };
  count.add = [](std::string_view acc, const StreamRecord&) {
    return std::to_string(std::stoll(std::string(acc)) + 1);
  };
  return count;
}

// Declarative build: logical plan -> optimizer (fusion) -> lowering.
// The flat_map and key_by fuse into one "split" stage; the stateful
// aggregate starts the "count" stage after the repartition.
Result<plan::LoweredPlan> BuildPlanned() {
  plan::UdfRegistry registry;
  registry.RegisterFlatMap("split_words", SplitWords);
  registry.RegisterKey("word", [](const StreamRecord& r) { return r.key; });
  registry.RegisterAggregate("count", CountAgg());

  plan::PlanBuilder pb("wordcount", /*default_tasks=*/2);
  auto lines = pb.Source("lines");
  auto words = pb.FlatMap(lines, "split_words").Stage("split");
  auto keyed = pb.KeyBy(words, "word").Via("words");
  auto counts = pb.Aggregate(keyed, "counts", "count").Stage("count");
  pb.Sink(counts, "wordcount");

  auto logical = pb.Build();
  if (!logical.ok()) {
    return logical.status();
  }
  auto optimized = plan::Optimizer::Default().Run(*logical, registry);
  if (!optimized.ok()) {
    return optimized.status();
  }
  return plan::LowerPlan(*optimized, registry);
}

// The original hand-built pipeline (kept behind --no-plan).
Result<QueryPlan> BuildImperative() {
  QueryBuilder qb("wordcount");
  qb.Ingress("lines");
  qb.AddStage("split", /*num_tasks=*/2)
      .ReadsFrom({"lines"})
      .FlatMap(SplitWords)
      .WritesTo("words");
  qb.AddStage("count", /*num_tasks=*/2)
      .ReadsFrom({"words"})
      .Aggregate("counts", CountAgg())
      .Sink("wordcount");
  return qb.Build();
}

}  // namespace

int main(int argc, char** argv) {
  bool use_plan = true;
  bool explain = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-plan") == 0) {
      use_plan = false;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else {
      std::fprintf(stderr, "usage: quickstart [--explain] [--no-plan]\n");
      return 2;
    }
  }

  // 1. An engine owns the shared log, the checkpoint store, and the task
  //    manager for one stream query. Default: Impeller's progress-marking
  //    protocol, 100 ms commit interval.
  EngineOptions options;
  options.config.commit_interval = 50 * kMillisecond;
  Engine engine(std::move(options));

  // 2. Describe the query — declaratively by default.
  QueryPlan query;
  if (use_plan) {
    auto lowered = BuildPlanned();
    if (!lowered.ok()) {
      std::fprintf(stderr, "plan error: %s\n",
                   lowered.status().ToString().c_str());
      return 1;
    }
    if (explain) {
      std::printf("%s\n", plan::ExplainText(*lowered).c_str());
    }
    query = std::move(lowered->query);
  } else {
    auto built = BuildImperative();
    if (!built.ok()) {
      std::fprintf(stderr, "plan error: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    query = std::move(*built);
  }
  if (Status st = engine.Submit(std::move(query)); !st.ok()) {
    std::fprintf(stderr, "submit error: %s\n", st.ToString().c_str());
    return 1;
  }

  // 3. Feed the ingress stream (the gateway + data-ingress path of Fig. 2).
  auto producer = engine.NewProducer("example-gen", "lines");
  const char* lines[] = {
      "hello world",
      "hello shared log",
      "the log is the system",
      "exactly once means exactly once",
  };
  for (const char* line : lines) {
    (*producer)->Send("line", line);
  }
  (void)(*producer)->Flush();

  // 4. Wait for the pipeline to drain, then stop gracefully (final commit).
  Counter* outputs = engine.metrics()->GetCounter("out/wordcount");
  Clock* clock = engine.clock();
  TimeNs deadline = clock->Now() + 10 * kSecond;
  while (outputs->Get() < 15 && clock->Now() < deadline) {
    clock->SleepFor(5 * kMillisecond);
  }
  engine.Stop();

  // 5. Read the committed results from the egress stream. Both builds
  //    sink from the "count" stage, so the consumer code is identical.
  std::map<std::string, long> counts;
  for (uint32_t sub = 0; sub < 2; ++sub) {
    auto consumer = engine.NewEgressConsumer("count", sub);
    auto records = (*consumer)->PollAll();
    for (const auto& r : *records) {
      std::string key(r.data.key);
      counts[key] = std::max(counts[key],
                             std::stol(std::string(r.data.value)));
    }
  }
  std::printf("word counts (exactly-once):\n");
  for (const auto& [word, n] : counts) {
    std::printf("  %-10s %ld\n", word.c_str(), n);
  }
  std::printf("end-to-end latency: %s\n",
              engine.metrics()->Histogram("lat/wordcount")->Summary().c_str());
  return 0;
}
