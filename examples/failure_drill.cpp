// Failure drill: demonstrates Impeller's fault-tolerance story end to end —
// crash a stateful task mid-stream, watch it recover from the last progress
// marker (checkpoint + change-log replay, §3.3.4/§3.5), start a zombie and
// watch the conditional-append fence kill it (§3.4), and verify the output
// is still exactly-once.
#include <cstdio>
#include <sstream>

#include "src/core/engine.h"
#include "src/core/stream.h"

using namespace impeller;

namespace {

void SendBatch(IngressProducer* producer, int lines, const char* text) {
  for (int i = 0; i < lines; ++i) {
    producer->Send("line" + std::to_string(i), text);
  }
  (void)producer->Flush();
}

void AwaitCount(Engine& engine, uint64_t target) {
  Counter* out = engine.metrics()->GetCounter("out/wc");
  Clock* clock = engine.clock();
  TimeNs deadline = clock->Now() + 20 * kSecond;
  while (out->Get() < target && clock->Now() < deadline) {
    clock->SleepFor(5 * kMillisecond);
  }
}

}  // namespace

int main() {
  EngineOptions options;
  options.config.commit_interval = 50 * kMillisecond;
  options.config.snapshot_interval = 500 * kMillisecond;
  options.config.auto_restart = false;  // we drive the failures by hand
  Engine engine(std::move(options));

  AggregateFn count;
  count.init = [] { return std::string("0"); };
  count.add = [](std::string_view acc, const StreamRecord&) {
    return std::to_string(std::stoll(std::string(acc)) + 1);
  };
  QueryBuilder qb("wc");
  qb.Ingress("lines");
  qb.AddStage("split", 2)
      .ReadsFrom({"lines"})
      .FlatMap([](StreamRecord r, std::vector<StreamRecord>* out) {
        std::istringstream s(r.value);
        std::string word;
        while (s >> word) {
          out->push_back({word, "1", r.event_time});
        }
      })
      .WritesTo("words");
  qb.AddStage("count", 2).ReadsFrom({"words"}).Aggregate("c", count).Sink(
      "wc");
  auto plan = qb.Build();
  if (!plan.ok() || !engine.Submit(std::move(*plan)).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }
  auto producer = engine.NewProducer("gen", "lines");

  std::printf("== phase 1: normal processing\n");
  SendBatch(producer->get(), 100, "stream processing on shared logs");
  AwaitCount(engine, 500);
  std::printf("   500 word updates committed\n");
  engine.clock()->SleepFor(700 * kMillisecond);  // let a checkpoint land

  std::printf("== phase 2: crash the counting task wc/count/0\n");
  auto stats = engine.tasks()->RestartTask("wc/count/0");
  if (!stats.ok()) {
    std::fprintf(stderr, "restart failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "   recovered in %.2fms (checkpoint=%s, change-log entries read=%lu,"
      " changes applied=%lu)\n",
      stats->duration / 1e6, stats->used_checkpoint ? "yes" : "no",
      static_cast<unsigned long>(stats->changelog_entries_read),
      static_cast<unsigned long>(stats->changes_applied));

  std::printf("== phase 3: a zombie instance (stale task manager verdict)\n");
  TaskRuntime* zombie = engine.tasks()->FindTask("wc/count/1");
  (void)engine.tasks()->StartReplacement("wc/count/1");
  SendBatch(producer->get(), 100, "stream processing on shared logs");
  AwaitCount(engine, 1000);
  Clock* clock = engine.clock();
  TimeNs deadline = clock->Now() + 10 * kSecond;
  while (!zombie->finished() && clock->Now() < deadline) {
    clock->SleepFor(10 * kMillisecond);
  }
  std::printf("   zombie status: %s\n",
              zombie->final_status().ToString().c_str());

  engine.Stop();
  std::printf("== final word counts (must be exactly 200 each):\n");
  std::map<std::string, long> counts;
  for (uint32_t sub = 0; sub < 2; ++sub) {
    auto consumer = engine.NewEgressConsumer("count", sub);
    auto records = (*consumer)->PollAll();
    for (const auto& r : *records) {
      std::string key(r.data.key);
      counts[key] = std::max(counts[key],
                             std::stol(std::string(r.data.value)));
    }
  }
  bool exact = true;
  for (const auto& [word, n] : counts) {
    std::printf("   %-12s %ld\n", word.c_str(), n);
    exact = exact && n == 200;
  }
  std::printf("exactly-once: %s\n", exact ? "PASS" : "FAIL");
  return exact ? 0 : 1;
}
