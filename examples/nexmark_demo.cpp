// NEXMark demo: runs one of the paper's eight auction-site queries (§5.3,
// Table 3) against the generated person/auction/bid stream and reports
// end-to-end event-time latency, optionally comparing protocols.
//
// Usage: nexmark_demo [query 1-8] [events/s] [seconds] [protocol]
//   protocol: impeller (default) | kafka-txn | aligned-ckpt | unsafe
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/nexmark/driver.h"
#include "src/nexmark/queries.h"

using namespace impeller;

int main(int argc, char** argv) {
  int query = argc > 1 ? std::atoi(argv[1]) : 5;
  double rate = argc > 2 ? std::atof(argv[2]) : 5000;
  double seconds = argc > 3 ? std::atof(argv[3]) : 5;
  const char* protocol = argc > 4 ? argv[4] : "impeller";

  EngineOptions options;
  if (std::strcmp(protocol, "kafka-txn") == 0) {
    options.config.protocol = ProtocolKind::kKafkaTxn;
  } else if (std::strcmp(protocol, "aligned-ckpt") == 0) {
    options.config.protocol = ProtocolKind::kAlignedCheckpoint;
  } else if (std::strcmp(protocol, "unsafe") == 0) {
    options.config.protocol = ProtocolKind::kUnsafe;
  }
  // The Boki-calibrated latency model (Table 2) so latencies are realistic.
  options.log_latency = std::make_shared<CalibratedLatencyModel>(
      CalibratedLatencyModel::BokiParams(), 42);
  Engine engine(std::move(options));

  NexmarkQueryOptions query_options;
  query_options.tasks_per_stage = 2;
  auto plan = BuildNexmarkQuery(query, query_options);
  if (!plan.ok()) {
    std::fprintf(stderr, "Q%d: %s\n", query, plan.status().ToString().c_str());
    return 1;
  }
  std::printf("NEXMark Q%d | %s | %.0f events/s | %.0fs | stages:", query,
              protocol, rate, seconds);
  for (const auto& stage : plan->stages) {
    std::printf(" %s(x%u%s)", stage.name.c_str(), stage.num_tasks,
                stage.stateful ? ",stateful" : "");
  }
  std::printf("\n");
  if (Status st = engine.Submit(std::move(*plan)); !st.ok()) {
    std::fprintf(stderr, "submit: %s\n", st.ToString().c_str());
    return 1;
  }

  NexmarkDriverOptions driver_options;
  driver_options.events_per_sec = rate;
  driver_options.flush_interval =
      query <= 2 ? 10 * kMillisecond : 100 * kMillisecond;
  auto driver = NexmarkDriver::Create(&engine, query, driver_options);
  if (!driver.ok()) {
    std::fprintf(stderr, "driver: %s\n", driver.status().ToString().c_str());
    return 1;
  }

  std::string sink = NexmarkSinkName(query);
  LatencyHistogram* latency = engine.metrics()->Histogram("lat/" + sink);
  Counter* outputs = engine.metrics()->GetCounter("out/" + sink);
  (*driver)->Start();
  for (int tick = 1; tick <= static_cast<int>(seconds); ++tick) {
    engine.clock()->SleepFor(kSecond);
    std::printf("  t=%2ds  inputs=%-8lu outputs=%-8lu %s\n", tick,
                static_cast<unsigned long>((*driver)->events_sent()),
                static_cast<unsigned long>(outputs->Get()),
                latency->Summary().c_str());
  }
  (*driver)->Stop();
  engine.Stop();

  std::printf(
      "final: %lu inputs, %lu outputs, latency p50=%s p99=%s max=%s\n",
      static_cast<unsigned long>((*driver)->events_sent()),
      static_cast<unsigned long>(outputs->Get()),
      FormatDurationNs(latency->p50()).c_str(),
      FormatDurationNs(latency->p99()).c_str(),
      FormatDurationNs(latency->Max()).c_str());
  std::printf("log: %lu records appended, %lu batches\n",
              static_cast<unsigned long>(engine.log()->stats().records),
              static_cast<unsigned long>(engine.log()->stats().appends));
  return 0;
}
