// NEXMark demo: runs one of the paper's eight auction-site queries (§5.3,
// Table 3) against the generated person/auction/bid stream and reports
// end-to-end event-time latency, optionally comparing protocols.
//
// Queries are built through the declarative plan layer (src/plan/) by
// default: logical plan -> fusion/pushdown optimizer -> lowering. The
// lowered QueryPlan is structurally identical to the imperative builders
// in src/nexmark/queries.cc (that equivalence is test-enforced).
//
// Usage: nexmark_demo [flags] [query 1-8] [events/s] [seconds] [protocol]
//   protocol: impeller (default) | kafka-txn | aligned-ckpt | unsafe
//   --explain   print the optimized plan (text tree) before running
//   --dot       print the plan as Graphviz DOT instead of running
//   --no-fuse   disable chain fusion: every operator its own stage, every
//               boundary a log hop (the ablation baseline)
//   --no-plan   bypass the plan layer; use the imperative builders
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "src/nexmark/driver.h"
#include "src/nexmark/plan_queries.h"
#include "src/nexmark/queries.h"
#include "src/plan/explain.h"

using namespace impeller;

int main(int argc, char** argv) {
  bool use_plan = true;
  bool fuse = true;
  bool explain = false;
  bool dot = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-plan") == 0) {
      use_plan = false;
    } else if (std::strcmp(argv[i], "--no-fuse") == 0) {
      fuse = false;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--dot") == 0) {
      dot = true;
    } else if (argv[i][0] == '-' && !std::isdigit(argv[i][1])) {
      std::fprintf(stderr,
                   "unknown flag %s\nusage: nexmark_demo [--explain] [--dot] "
                   "[--no-fuse] [--no-plan] [query 1-8] [events/s] [seconds] "
                   "[protocol]\n",
                   argv[i]);
      return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  int query = positional.size() > 0 ? std::atoi(positional[0]) : 5;
  double rate = positional.size() > 1 ? std::atof(positional[1]) : 5000;
  double seconds = positional.size() > 2 ? std::atof(positional[2]) : 5;
  const char* protocol = positional.size() > 3 ? positional[3] : "impeller";
  if ((!use_plan && !fuse) || ((explain || dot) && !use_plan)) {
    std::fprintf(stderr,
                 "--no-fuse/--explain/--dot need the plan layer; drop "
                 "--no-plan\n");
    return 2;
  }

  EngineOptions options;
  if (std::strcmp(protocol, "kafka-txn") == 0) {
    options.config.protocol = ProtocolKind::kKafkaTxn;
  } else if (std::strcmp(protocol, "aligned-ckpt") == 0) {
    options.config.protocol = ProtocolKind::kAlignedCheckpoint;
  } else if (std::strcmp(protocol, "unsafe") == 0) {
    options.config.protocol = ProtocolKind::kUnsafe;
  }
  // The Boki-calibrated latency model (Table 2) so latencies are realistic.
  options.log_latency = std::make_shared<CalibratedLatencyModel>(
      CalibratedLatencyModel::BokiParams(), 42);
  Engine engine(std::move(options));

  NexmarkQueryOptions query_options;
  query_options.tasks_per_stage = 2;

  QueryPlan plan;
  if (use_plan) {
    auto built = nexmark::BuildNexmarkPlanQuery(query, query_options, fuse);
    if (!built.ok()) {
      std::fprintf(stderr, "Q%d: %s\n", query,
                   built.status().ToString().c_str());
      return 1;
    }
    if (dot) {
      std::printf("%s", plan::ExplainDot(built->lowered).c_str());
      return 0;
    }
    if (explain) {
      std::printf("%s\n", plan::ExplainText(built->lowered).c_str());
    }
    plan = std::move(built->lowered.query);
  } else {
    auto built = BuildNexmarkQuery(query, query_options);
    if (!built.ok()) {
      std::fprintf(stderr, "Q%d: %s\n", query,
                   built.status().ToString().c_str());
      return 1;
    }
    plan = std::move(*built);
  }
  std::printf("NEXMark Q%d | %s | %s | %.0f events/s | %.0fs | stages:",
              query, use_plan ? (fuse ? "plan" : "plan,unfused") : "imperative",
              protocol, rate, seconds);
  for (const auto& stage : plan.stages) {
    std::printf(" %s(x%u%s)", stage.name.c_str(), stage.num_tasks,
                stage.stateful ? ",stateful" : "");
  }
  std::printf("\n");
  if (Status st = engine.Submit(std::move(plan)); !st.ok()) {
    std::fprintf(stderr, "submit: %s\n", st.ToString().c_str());
    return 1;
  }

  NexmarkDriverOptions driver_options;
  driver_options.events_per_sec = rate;
  driver_options.flush_interval =
      query <= 2 ? 10 * kMillisecond : 100 * kMillisecond;
  auto driver = NexmarkDriver::Create(&engine, query, driver_options);
  if (!driver.ok()) {
    std::fprintf(stderr, "driver: %s\n", driver.status().ToString().c_str());
    return 1;
  }

  std::string sink = NexmarkSinkName(query);
  LatencyHistogram* latency = engine.metrics()->Histogram("lat/" + sink);
  Counter* outputs = engine.metrics()->GetCounter("out/" + sink);
  (*driver)->Start();
  for (int tick = 1; tick <= static_cast<int>(seconds); ++tick) {
    engine.clock()->SleepFor(kSecond);
    std::printf("  t=%2ds  inputs=%-8lu outputs=%-8lu %s\n", tick,
                static_cast<unsigned long>((*driver)->events_sent()),
                static_cast<unsigned long>(outputs->Get()),
                latency->Summary().c_str());
  }
  (*driver)->Stop();
  engine.Stop();

  std::printf(
      "final: %lu inputs, %lu outputs, latency p50=%s p99=%s max=%s\n",
      static_cast<unsigned long>((*driver)->events_sent()),
      static_cast<unsigned long>(outputs->Get()),
      FormatDurationNs(latency->p50()).c_str(),
      FormatDurationNs(latency->p99()).c_str(),
      FormatDurationNs(latency->Max()).c_str());
  std::printf("log: %lu records appended, %lu batches\n",
              static_cast<unsigned long>(engine.log()->stats().records),
              static_cast<unsigned long>(engine.log()->stats().appends));
  return 0;
}
